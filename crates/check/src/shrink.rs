//! Greedy shrinking of failing programs to minimal reproducers.
//!
//! Given a program that fails [`check_program`] with some
//! [`FailureKind`], the shrinker repeatedly tries structure-reducing
//! candidate edits and keeps any candidate that (a) still validates and
//! (b) still fails with the *same* kind — the failure signature. It runs
//! to a fixpoint: the result is locally minimal in that no single
//! candidate edit preserves the failure.
//!
//! Candidate edits, largest cut first:
//!
//! 1. **Drop an uncalled codeblock** (never the main one), remapping every
//!    `CodeblockId` above it downward.
//! 2. **Drop one instruction** from any thread or inlet body. Because a
//!    dropped fork/post starves its target thread's entry count (turning
//!    every failure into a `NoCompletion` and defeating the signature
//!    check), each drop of an op with targets comes in two flavours:
//!    with the targets' entry counts decremented to match, and plain.
//!    Dropping a `Call` or `IFetch` compensates the threads posted by its
//!    reply inlet the same way.
//! 3. **Short-circuit a `Call` or `IFetch`** into direct forks of the
//!    threads its reply inlet posts — the synchronization without the
//!    split phase, which is what lets callee codeblocks become
//!    unreferenced and fall to rule 1.
//! 4. **Drop any `Return` value, or the trailing `Call` argument** (a
//!    dropped call argument starves the callee's arg inlet, so the
//!    threads that inlet posts get their entry counts decremented to
//!    match; dropping a non-trailing call argument would shift the
//!    remaining ones onto different inlets, so only the last is tried).
//! 5. **Zero a main argument** (value-level shrinking; keeps arity).
//! 6. **Drop the last heap array** when nothing references it.
//!
//! Rules 1, 2, 4, 5, and 6 each strictly reduce a finite measure (ops,
//! then return values and call arguments, then nonzero arguments and
//! arrays). Rule 3 keeps the op count constant only when the reply inlet
//! posts a single thread, and it strictly reduces the number of
//! `Call`/`IFetch` ops, which nothing else increases — so the greedy loop
//! still terminates.
//!
//! When the failure came from an injected [`crate::Mutation`], the
//! signature is a *double run*: the candidate must fail with the mutation
//! **and pass without it**. Candidates that are broken regardless of the
//! mutation (e.g. an edit that removed a register definition) are
//! rejected, so the reproducer demonstrates the mutation's effect and
//! nothing else.

use crate::diff::{check_program, CheckConfig, FailureKind};
use tamsim_tam::{Codeblock, CodeblockId, Program, TOp, ThreadId, Value};

/// The failure signature of `program` under `cfg`, or `None` if it
/// passes.
///
/// With [`CheckConfig::mutation`] set, a program only has a signature if
/// it *also* passes cleanly without the mutation (see module docs).
pub fn failure_signature(program: &Program, cfg: &CheckConfig) -> Option<FailureKind> {
    let failure = check_program(program, cfg).err()?;
    if cfg.mutation.is_some() {
        let clean = CheckConfig {
            mutation: None,
            ..cfg.clone()
        };
        if check_program(program, &clean).is_err() {
            return None;
        }
    }
    Some(failure.kind)
}

/// What [`shrink`] did and what it arrived at.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The locally minimal reproducer.
    pub program: Program,
    /// Accepted edits (program got smaller this many times).
    pub accepted: u32,
    /// Candidate edits tried in total.
    pub tried: u64,
}

/// Shrink `original` — which must fail `cfg` with signature `kind` — to a
/// locally minimal program with the same signature.
pub fn shrink(original: &Program, cfg: &CheckConfig, kind: FailureKind) -> ShrinkReport {
    debug_assert_eq!(failure_signature(original, cfg), Some(kind));
    let mut best = original.clone();
    let mut accepted = 0;
    let mut tried = 0u64;
    'outer: loop {
        for candidate in candidates(&best) {
            tried += 1;
            if candidate.validate().is_err() {
                continue;
            }
            if failure_signature(&candidate, cfg) == Some(kind) {
                best = candidate;
                accepted += 1;
                continue 'outer;
            }
        }
        return ShrinkReport {
            program: best,
            accepted,
            tried,
        };
    }
}

/// All single-edit reductions of `p`, largest cut first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();

    // 1. Drop an uncalled, non-main codeblock.
    for i in 0..p.codeblocks.len() {
        if i != p.main.0 as usize && !is_referenced(p, i) {
            out.push(remove_codeblock(p, i));
        }
    }

    // 2. Drop one op from any body.
    for ci in 0..p.codeblocks.len() {
        let cb = &p.codeblocks[ci];
        let n_threads = cb.threads.len();
        let bodies = n_threads + cb.inlets.len();
        for bi in 0..bodies {
            let ops = if bi < n_threads {
                &cb.threads[bi].ops
            } else {
                &cb.inlets[bi - n_threads].ops
            };
            for (oi, op) in ops.iter().enumerate() {
                let compensate = drop_compensation(cb, op);
                out.push(remove_op(p, ci, bi, oi, &compensate));
                if !compensate.is_empty() {
                    out.push(remove_op(p, ci, bi, oi, &[]));
                }
            }
        }
    }

    // 3. Short-circuit a split-phase op to its synchronization effect:
    //    replace a Call/IFetch with direct fork/post of the threads its
    //    reply inlet would have posted. This is what lets a callee
    //    codeblock become unreferenced and fall to candidate 1.
    for ci in 0..p.codeblocks.len() {
        let cb = &p.codeblocks[ci];
        let n_threads = cb.threads.len();
        let bodies = n_threads + cb.inlets.len();
        for bi in 0..bodies {
            let in_thread = bi < n_threads;
            let ops = if in_thread {
                &cb.threads[bi].ops
            } else {
                &cb.inlets[bi - n_threads].ops
            };
            for (oi, op) in ops.iter().enumerate() {
                let reply = match op {
                    TOp::Call { reply, .. } | TOp::IFetch { reply, .. } => *reply,
                    _ => continue,
                };
                let Some(inlet) = cb.inlets.get(reply.0 as usize) else {
                    continue;
                };
                let targets: Vec<ThreadId> = inlet.ops.iter().flat_map(|o| o.targets()).collect();
                if targets.is_empty() {
                    continue;
                }
                let mut q = p.clone();
                let qcb = &mut q.codeblocks[ci];
                let qops = if in_thread {
                    &mut qcb.threads[bi].ops
                } else {
                    &mut qcb.inlets[bi - n_threads].ops
                };
                let replacement = targets.iter().map(|&t| {
                    if in_thread {
                        TOp::Fork { t }
                    } else {
                        TOp::Post { t }
                    }
                });
                qops.splice(oi..=oi, replacement);
                out.push(q);
            }
        }
    }

    // 4. Drop the last value of a Return, or the last argument of a Call
    //    (decrementing the threads posted by the callee's now-unfed arg
    //    inlet, as for op removal).
    for ci in 0..p.codeblocks.len() {
        let cb = &p.codeblocks[ci];
        let n_threads = cb.threads.len();
        let bodies = n_threads + cb.inlets.len();
        for bi in 0..bodies {
            let ops = if bi < n_threads {
                &cb.threads[bi].ops
            } else {
                &cb.inlets[bi - n_threads].ops
            };
            for (oi, op) in ops.iter().enumerate() {
                match op {
                    TOp::Return { vals } if !vals.is_empty() => {
                        for vi in 0..vals.len() {
                            let mut q = p.clone();
                            let qcb = &mut q.codeblocks[ci];
                            let qops = if bi < n_threads {
                                &mut qcb.threads[bi].ops
                            } else {
                                &mut qcb.inlets[bi - n_threads].ops
                            };
                            let TOp::Return { vals } = &mut qops[oi] else {
                                unreachable!()
                            };
                            vals.remove(vi);
                            out.push(q);
                        }
                    }
                    TOp::Call {
                        cb: callee, args, ..
                    } if !args.is_empty() => {
                        let mut q = p.clone();
                        {
                            let qcb = &mut q.codeblocks[ci];
                            let qops = if bi < n_threads {
                                &mut qcb.threads[bi].ops
                            } else {
                                &mut qcb.inlets[bi - n_threads].ops
                            };
                            let TOp::Call { args, .. } = &mut qops[oi] else {
                                unreachable!()
                            };
                            args.pop();
                        }
                        let starved: Vec<ThreadId> = p
                            .codeblocks
                            .get(callee.0 as usize)
                            .and_then(|c| c.inlets.get(args.len() - 1))
                            .map(|inlet| inlet.ops.iter().flat_map(|o| o.targets()).collect())
                            .unwrap_or_default();
                        if let Some(target_cb) = q.codeblocks.get_mut(callee.0 as usize) {
                            for t in starved {
                                if let Some(thread) = target_cb.threads.get_mut(t.0 as usize) {
                                    thread.entry_count = thread.entry_count.saturating_sub(1);
                                }
                            }
                        }
                        out.push(q);
                    }
                    _ => {}
                }
            }
        }
    }

    // 5. Zero a nonzero integer main argument.
    for (i, arg) in p.main_args.iter().enumerate() {
        if matches!(arg, Value::Int(v) if *v != 0) {
            let mut q = p.clone();
            q.main_args[i] = Value::Int(0);
            out.push(q);
        }
    }

    // 6. Drop the last array when unreferenced.
    if !p.arrays.is_empty() && !array_referenced(p, p.arrays.len() - 1) {
        let mut q = p.clone();
        q.arrays.pop();
        out.push(q);
    }

    out
}

/// Threads whose entry counts must drop by one when `op` is removed: the
/// op's own fork/post targets, plus — for split-phase ops — the targets
/// posted by the reply inlet whose message will no longer arrive.
fn drop_compensation(cb: &Codeblock, op: &TOp) -> Vec<ThreadId> {
    let mut targets = op.targets();
    let reply = match op {
        TOp::Call { reply, .. } | TOp::IFetch { reply, .. } => Some(*reply),
        _ => None,
    };
    if let Some(reply) = reply {
        if let Some(inlet) = cb.inlets.get(reply.0 as usize) {
            for o in &inlet.ops {
                targets.extend(o.targets());
            }
        }
    }
    targets
}

/// `p` without op `oi` of body `bi` (threads then inlets) of codeblock
/// `ci`, with `compensate` entry counts decremented.
fn remove_op(p: &Program, ci: usize, bi: usize, oi: usize, compensate: &[ThreadId]) -> Program {
    let mut q = p.clone();
    let cb = &mut q.codeblocks[ci];
    let n_threads = cb.threads.len();
    if bi < n_threads {
        cb.threads[bi].ops.remove(oi);
    } else {
        cb.inlets[bi - n_threads].ops.remove(oi);
    }
    for t in compensate {
        if let Some(thread) = cb.threads.get_mut(t.0 as usize) {
            thread.entry_count = thread.entry_count.saturating_sub(1);
        }
    }
    q
}

/// Whether any `Call`/`SendToInlet` anywhere targets codeblock `i`.
fn is_referenced(p: &Program, i: usize) -> bool {
    each_op(p).any(|op| {
        matches!(op, TOp::Call { cb, .. } | TOp::SendToInlet { cb, .. }
                 if cb.0 as usize == i)
    })
}

/// Whether any `MovI` loads the base address of array `i`.
fn array_referenced(p: &Program, i: usize) -> bool {
    each_op(p).any(|op| matches!(op, TOp::MovI { v: Value::ArrayBase(j), .. } if *j == i))
}

/// Every op of every body of every codeblock.
fn each_op(p: &Program) -> impl Iterator<Item = &TOp> {
    p.codeblocks.iter().flat_map(|cb| {
        cb.threads
            .iter()
            .map(|t| &t.ops)
            .chain(cb.inlets.iter().map(|i| &i.ops))
            .flatten()
    })
}

/// `p` without codeblock `i`, every id above `i` remapped down by one.
fn remove_codeblock(p: &Program, i: usize) -> Program {
    let remap = |cb: CodeblockId| {
        if (cb.0 as usize) > i {
            CodeblockId(cb.0 - 1)
        } else {
            cb
        }
    };
    let mut q = p.clone();
    q.codeblocks.remove(i);
    q.main = remap(q.main);
    for cb in &mut q.codeblocks {
        let bodies = cb
            .threads
            .iter_mut()
            .map(|t| &mut t.ops)
            .chain(cb.inlets.iter_mut().map(|inl| &mut inl.ops));
        for ops in bodies {
            for op in ops {
                match op {
                    TOp::Call { cb, .. } | TOp::SendToInlet { cb, .. } => *cb = remap(*cb),
                    _ => {}
                }
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::Mutation;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn candidate_edits_reduce_or_simplify() {
        fn vals_and_args(p: &Program) -> usize {
            super::each_op(p)
                .map(|op| match op {
                    TOp::Return { vals } => vals.len(),
                    TOp::Call { args, .. } => args.len(),
                    _ => 0,
                })
                .sum()
        }
        fn split_phase_ops(p: &Program) -> usize {
            super::each_op(p)
                .filter(|op| matches!(op, TOp::Call { .. } | TOp::IFetch { .. }))
                .count()
        }
        let p = generate(5, &GenConfig::default());
        for c in candidates(&p) {
            let shrunk_ops = c.static_ops() < p.static_ops();
            let fewer_cbs = c.codeblocks.len() < p.codeblocks.len();
            let fewer_arrays = c.arrays.len() < p.arrays.len();
            let fewer_vals = vals_and_args(&c) < vals_and_args(&p);
            let fewer_calls = split_phase_ops(&c) < split_phase_ops(&p);
            let zeroed = c.main_args != p.main_args;
            assert!(shrunk_ops || fewer_cbs || fewer_arrays || fewer_vals || fewer_calls || zeroed);
        }
    }

    #[test]
    fn codeblock_removal_remaps_call_targets() {
        // Find a generated program with ≥3 codeblocks and check id
        // remapping survives validation after removing an uncalled one.
        for seed in 0..64 {
            let p = generate(seed, &GenConfig::default());
            if p.codeblocks.len() < 3 {
                continue;
            }
            for i in 1..p.codeblocks.len() {
                if !is_referenced(&p, i) {
                    let q = remove_codeblock(&p, i);
                    q.validate().expect("remapped program must validate");
                    assert_eq!(q.codeblocks.len(), p.codeblocks.len() - 1);
                    return;
                }
            }
        }
        panic!("no shrinkable seed found in 0..64");
    }

    #[test]
    fn shrinks_a_mutation_divergence_to_a_tiny_reproducer() {
        let cfg = CheckConfig {
            mutation: Some(Mutation::FlipFirstAddToSub),
            ..CheckConfig::default()
        };
        // Find a seed whose generated program diverges under the mutation.
        let (program, kind) = (0..64)
            .find_map(|seed| {
                let p = generate(seed, &cfg.gen);
                failure_signature(&p, &cfg).map(|k| (p, k))
            })
            .expect("some seed in 0..64 must expose the mutation");
        assert_eq!(kind, FailureKind::ResultDivergence);
        let report = shrink(&program, &cfg, kind);
        let minimal = &report.program;
        minimal.validate().expect("reproducer must validate");
        assert_eq!(failure_signature(minimal, &cfg), Some(kind));
        assert!(
            minimal.static_ops() <= 10,
            "reproducer has {} static ops (started from {})",
            minimal.static_ops(),
            program.static_ops()
        );
    }
}
