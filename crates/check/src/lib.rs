//! Differential correctness harness for the simulator.
//!
//! The paper's claims rest on three back-ends (AM, AM-enabled, MD) being
//! *the same computation* under different message-handling disciplines —
//! every locality number is meaningless if they can silently diverge. The
//! seven hand-written benchmarks exercise only seven points of the program
//! space; this crate covers the rest:
//!
//! * [`gen`] — a deterministic generator of random-but-valid TAM programs
//!   (seed in, program out; same seed, same program, on any host);
//! * [`invariant`] — a machine-level checker validating every memory
//!   access and queue sample of a run against the region model;
//! * [`diff`] — the differential runner executing one program under all
//!   three back-ends and cross-checking results, message conservation,
//!   termination residue, and the record/replay cache engine;
//! * [`shrink`] — greedy minimization of failing programs to reproducers
//!   small enough to read.
//!
//! [`fuzz_many`] ties them together: derive per-iteration seeds from a
//! master seed, fan the iterations across the worker pool, and report
//! every failing seed. `tamsim fuzz` is a thin CLI wrapper over it.

pub mod diff;
pub mod gen;
pub mod invariant;
pub mod rng;
pub mod shrink;

pub use diff::{
    check_program, mutate, CheckConfig, CheckFailure, CheckPass, FailureKind, ImplReport, Mutation,
    IMPLS,
};
pub use gen::{generate, GenConfig};
pub use invariant::InvariantChecker;
pub use rng::SplitMix64;
pub use shrink::{failure_signature, shrink, ShrinkReport};

use tamsim_obs::Manifest;
use tamsim_tam::{program_to_text, Program};

/// One failing fuzz iteration.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The program seed that failed (regenerate with [`generate`]).
    pub seed: u64,
    /// What failed.
    pub failure: CheckFailure,
}

/// The outcome of a [`fuzz_many`] campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Iterations that passed every check.
    pub passed: u64,
    /// Every failing iteration, in seed-derivation order.
    pub failures: Vec<FuzzFailure>,
    /// Access events cross-checked through the cache replay engine.
    pub trace_events: u64,
}

impl FuzzReport {
    /// Whether the whole campaign was clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `iterations` fuzz iterations with per-iteration seeds derived from
/// `master_seed`, fanned across the worker pool.
///
/// Each iteration generates a program from its seed and runs the full
/// differential check. The campaign is deterministic: the same
/// `master_seed`, `iterations`, and `cfg` observe the same programs and
/// the same outcomes on any host, regardless of worker count.
pub fn fuzz_many(master_seed: u64, iterations: u64, cfg: &CheckConfig) -> FuzzReport {
    let mut rng = SplitMix64::new(master_seed);
    let seeds: Vec<u64> = (0..iterations).map(|_| rng.next_u64()).collect();
    let outcomes = tamsim_trace::par_map(seeds, |seed| {
        let program = generate(seed, &cfg.gen);
        (seed, check_program(&program, cfg))
    });
    let mut report = FuzzReport {
        iterations,
        passed: 0,
        failures: Vec::new(),
        trace_events: 0,
    };
    for (seed, outcome) in outcomes {
        match outcome {
            Ok(pass) => {
                report.passed += 1;
                report.trace_events += pass.trace_events as u64;
            }
            Err(failure) => report.failures.push(FuzzFailure { seed, failure }),
        }
    }
    report
}

/// The two files of a reproducer bundle: `(reproducer.tam contents,
/// manifest.json contents)`.
///
/// The `.tam` text round-trips through [`tamsim_tam::parse_program`], so
/// `tamsim run reproducer.tam` replays the failing program directly; the
/// manifest records the seed, failure kind, and shrink provenance.
pub fn reproducer_files(
    program: &Program,
    seed: u64,
    failure: &CheckFailure,
    shrunk_from: Option<&ShrinkReport>,
) -> (String, String) {
    let mut tam = String::new();
    tam.push_str(&format!(
        "# fuzz reproducer: seed {seed:#018x}, failure {}\n",
        failure.kind.name()
    ));
    tam.push_str(&format!("# {}\n", failure.detail));
    if let Some(r) = shrunk_from {
        tam.push_str(&format!(
            "# shrunk: {} accepted edit(s) over {} candidate(s), {} static ops\n",
            r.accepted,
            r.tried,
            program.static_ops()
        ));
    }
    tam.push_str(&program_to_text(program));

    let mut manifest = Manifest::new(format!("tamsim fuzz --seed {seed:#x} --shrink"));
    manifest.program = program.name.clone();
    manifest.implementation = "am,am-en,md".to_string();
    manifest.config = vec![
        ("seed".to_string(), format!("{seed:#018x}")),
        ("failure_kind".to_string(), failure.kind.name().to_string()),
        ("failure_detail".to_string(), failure.detail.clone()),
        ("static_ops".to_string(), program.static_ops().to_string()),
        ("shrunk".to_string(), shrunk_from.is_some().to_string()),
    ];
    (tam, manifest.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = CheckConfig::default();
        let a = fuzz_many(1, 8, &cfg);
        assert!(a.is_clean(), "failures: {:?}", a.failures);
        assert_eq!(a.passed, 8);
        assert!(a.trace_events > 0);
        let b = fuzz_many(1, 8, &cfg);
        assert_eq!(a.trace_events, b.trace_events);
    }

    #[test]
    fn mesh_campaign_is_clean() {
        // The fuzzed 1×1-mesh identity check: generated programs (not just
        // the hand-written benchmarks) must run bit-identically on the
        // mesh driver. Few iterations — each runs all three back-ends
        // twice.
        let cfg = CheckConfig {
            mesh: true,
            ..CheckConfig::default()
        };
        let report = fuzz_many(2, 6, &cfg);
        assert!(report.is_clean(), "failures: {:?}", report.failures);
        assert_eq!(report.passed, 6);
    }

    #[test]
    fn mutated_campaign_reports_seeds() {
        let cfg = CheckConfig {
            mutation: Some(Mutation::FlipFirstAddToSub),
            ..CheckConfig::default()
        };
        let report = fuzz_many(1, 16, &cfg);
        assert!(
            !report.is_clean(),
            "a seeded bug must be caught within 16 iterations"
        );
        for f in &report.failures {
            assert_eq!(f.failure.kind, FailureKind::ResultDivergence);
        }
    }

    #[test]
    fn reproducer_round_trips_and_manifest_parses() {
        let program = generate(3, &GenConfig::default());
        let failure = CheckFailure {
            kind: FailureKind::ResultDivergence,
            detail: "synthetic".to_string(),
        };
        let (tam, manifest) = reproducer_files(&program, 3, &failure, None);
        let parsed = tamsim_tam::parse_program(&tam).expect("reproducer text must parse");
        assert_eq!(parsed.static_ops(), program.static_ops());
        tamsim_obs::json::validate(&manifest).expect("manifest must be valid JSON");
        assert!(manifest.contains("result-divergence"));
    }
}
