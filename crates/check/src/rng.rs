//! SplitMix64: the deterministic seed-derived PRNG behind the fuzzer.
//!
//! The same generator already drives the benchmark inputs
//! (`crates/programs/src/qs.rs`); it is reproduced here rather than shared
//! because the two crates must stay independently buildable, the algorithm
//! is eleven lines, and the *streams* are deliberately unrelated — a fuzz
//! seed must never correlate with a benchmark input seed.

/// A SplitMix64 stream (Steele, Lea & Flood; public domain reference
/// constants). Every fuzz artifact — program shapes, operand choices,
/// per-iteration seeds — derives from one of these, so a `u64` seed fully
/// reproduces a run on any host.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Simple modulo reduction: the fuzzer's bounds are tiny (≤ a few
    /// dozen), so modulo bias is far below anything that could skew
    /// coverage.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip that lands true once per `n` calls on average.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
            let v = r.range(2, 4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn pick_covers_the_slice() {
        let mut r = SplitMix64::new(1);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *r.pick(&items);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
