//! Mesh network observability rendering: causal flow arrows, per-node
//! buffer-occupancy counters, and the mesh statistics profile.
//!
//! Everything here is plain data — this crate deliberately knows nothing
//! about the mesh simulator. The metrics crate adapts a mesh run's
//! network trace into [`MeshNetTrace`] / [`MeshNetSummary`] and hands
//! them to [`mesh_trace_json_traced`] / [`mesh_profile_json`].
//!
//! In the Chrome trace-event output, each traced message becomes a
//! *send* slice on the source node's network track and an *inlet* slice
//! on the destination's, connected by a flow arrow (`"ph":"s"` at the
//! send, `"ph":"f","bp":"e"` at the inlet) — load `mesh_trace.json` in
//! `ui.perfetto.dev` and the arrows draw the causal fabric traffic on
//! top of the per-node activity timelines.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::export::{NodeTrack, PID};
use crate::json::{num, quote};

/// Network message tracks sit above the per-node activity tracks.
const NET_TID_BASE: usize = 500_000;
/// Per-node buffer-occupancy counter tracks sit above everything else.
const NET_COUNTER_TID_BASE: usize = 2_000_000;

/// One traced message rendered as a send slice, an inlet slice, and the
/// flow arrow connecting them.
#[derive(Debug, Clone)]
pub struct MeshFlow {
    /// Stable flow id (the message's trace id).
    pub id: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Slice name shown in the viewer (e.g. `"msg 12 → n3"`).
    pub label: String,
    /// Cycle the message entered the source's inject queue.
    pub inject: u64,
    /// Send-slice length in cycles (at least 1 so the slice is visible).
    pub send_dur: u64,
    /// Cycle the message was retired into the destination's queue.
    pub deliver: u64,
    /// Inlet-slice length in cycles (delivery to handler dispatch).
    pub inlet_dur: u64,
}

/// One point on a node's buffer-occupancy counter track.
#[derive(Debug, Clone, Copy)]
pub struct MeshCounterSample {
    /// Node the sample describes.
    pub node: u32,
    /// Sample cycle.
    pub cycle: u64,
    /// Words queued in the node's inject buffer.
    pub inject_words: u32,
    /// Words queued in the node's receive buffer.
    pub recv_words: u32,
    /// Words queued across the node's link buffers.
    pub link_words: u32,
}

/// The network layer of a mesh trace: flows plus occupancy counters.
#[derive(Debug, Clone, Default)]
pub struct MeshNetTrace {
    /// Message flows, in trace-id order.
    pub flows: Vec<MeshFlow>,
    /// Occupancy samples, in time order per node.
    pub counters: Vec<MeshCounterSample>,
}

/// Render a mesh run with its network trace as one Chrome trace-event
/// JSON document: the per-node activity tracks of
/// [`crate::export::mesh_trace_json`] (which delegates here with an
/// empty net) plus per-node network message tracks with flow arrows and
/// buffer-occupancy counter tracks.
pub fn mesh_trace_json_traced(
    program: &str,
    implementation: &str,
    total_cycles: u64,
    tracks: &[NodeTrack],
    net: &MeshNetTrace,
) -> String {
    let n_spans: usize = tracks.iter().map(|t| t.spans.len()).sum();
    let mut out = String::with_capacity(
        4 * 1024 + n_spans * 96 + net.flows.len() * 360 + net.counters.len() * 120,
    );
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"program\":{},\"implementation\":{},\"nodes\":{},\"total_cycles\":{}",
        quote(program),
        quote(implementation),
        tracks.len(),
        total_cycles
    );
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    let mut event = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&s);
    };

    let process_name = format!("tamsim mesh {program} ({implementation})");
    event(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            quote(&process_name)
        ),
        &mut out,
    );
    for (tid, track) in tracks.iter().enumerate() {
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                quote(&track.name)
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
        );
        for s in &track.spans {
            event(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\"cat\":\"node\",\"ts\":{},\"dur\":{}}}",
                    s.label, s.start, s.cycles
                ),
                &mut out,
            );
        }
    }

    // Network message tracks: name every node that sends, receives, or
    // reports occupancy, then lay the send/inlet slices and flow arrows.
    let mut net_nodes: BTreeSet<u32> = BTreeSet::new();
    for f in &net.flows {
        net_nodes.insert(f.src);
        net_nodes.insert(f.dest);
    }
    for c in &net.counters {
        net_nodes.insert(c.node);
    }
    for &n in &net_nodes {
        let tid = NET_TID_BASE + n as usize;
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"node {n} net\"}}}}"
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
        );
    }
    for f in &net.flows {
        let src_tid = NET_TID_BASE + f.src as usize;
        let dest_tid = NET_TID_BASE + f.dest as usize;
        event(
            format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{src_tid},\"name\":{},\"cat\":\"msg\",\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"dest\":{}}}}}",
                quote(&f.label),
                f.inject,
                f.send_dur,
                f.id,
                f.dest
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"s\",\"pid\":{PID},\"tid\":{src_tid},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{}}}",
                f.id, f.inject
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{dest_tid},\"name\":{},\"cat\":\"msg\",\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"src\":{}}}}}",
                quote(&f.label),
                f.deliver,
                f.inlet_dur,
                f.id,
                f.src
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{PID},\"tid\":{dest_tid},\"id\":{},\"name\":\"msg\",\"cat\":\"msg\",\"ts\":{}}}",
                f.id, f.deliver
            ),
            &mut out,
        );
    }
    for c in &net.counters {
        event(
            format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"name\":\"node {} buffers (words)\",\"ts\":{},\"args\":{{\"inject\":{},\"recv\":{},\"links\":{}}}}}",
                NET_COUNTER_TID_BASE + c.node as usize,
                c.node,
                c.cycle,
                c.inject_words,
                c.recv_words,
                c.link_words
            ),
            &mut out,
        );
    }

    out.push_str("]}");
    out
}

/// One per-buffer telemetry row of the mesh profile (`links` array).
#[derive(Debug, Clone)]
pub struct MeshLinkRow {
    /// Node the buffer belongs to.
    pub node: u32,
    /// Buffer label: a mesh direction, `"inject"`, or `"recv"`.
    pub link: String,
    /// Messages accepted, `[low, high]`.
    pub msgs_in: [u64; 2],
    /// Words accepted, `[low, high]`.
    pub words_in: [u64; 2],
    /// Words forwarded or retired out of the buffer.
    pub words_out: u64,
    /// Words still queued when the run ended.
    pub queued_words: u64,
    /// Cycles the buffer's output port was serializing.
    pub busy_cycles: u64,
    /// Occupancy high-water mark (words).
    pub high_water: u64,
    /// Cycles the buffer's head was held by back-pressure.
    pub stall_cycles: u64,
}

/// One latency-histogram row of the mesh profile (`latency` array).
#[derive(Debug, Clone)]
pub struct MeshLatencyRow {
    /// `"deliver"` (inject → retire) or `"dispatch"` (inject → handler).
    pub kind: &'static str,
    /// Message priority (`"low"` / `"high"`).
    pub pri: &'static str,
    /// Hop count of the messages in this row.
    pub hops: u32,
    /// Messages measured.
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Largest latency in cycles.
    pub max: u64,
    /// Log-bucketed histogram rows `(lo, hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Everything the mesh profile's `net` object reports.
#[derive(Debug, Clone, Default)]
pub struct MeshNetSummary {
    /// Fabric counters as `(name, value)` pairs, rendered in order.
    pub stats: Vec<(&'static str, u64)>,
    /// Per-node deliver-stall cycles.
    pub deliver_stalls_by_node: Vec<u64>,
    /// Per-buffer telemetry rows.
    pub links: Vec<MeshLinkRow>,
    /// Latency-histogram rows.
    pub latency: Vec<MeshLatencyRow>,
    /// Messages with full lifecycle records.
    pub traced_msgs: u64,
    /// Records evicted by the trace ring (0 in full mode).
    pub dropped: u64,
    /// Dispatches the trace matcher could not attribute.
    pub unmatched_dispatches: u64,
}

/// One worker thread's share of a parallel mesh run.
#[derive(Debug, Clone, Copy)]
pub struct MeshThreadRow {
    /// First node of the worker's contiguous chunk.
    pub first_node: u32,
    /// Number of nodes in the chunk.
    pub nodes: u32,
    /// Instructions executed by the chunk's nodes.
    pub steps: u64,
    /// Messages retired by the chunk's nodes.
    pub deliveries: u64,
}

/// Per-thread utilization of a parallel mesh run, for the profile's
/// `parallel` object. Deterministic for a given (program, nodes, thread
/// count) — but a function of the thread count, so the CI determinism
/// job drops the object before byte-comparing profiles across thread
/// counts.
#[derive(Debug, Clone)]
pub struct MeshParallelSummary {
    /// Worker threads the run was configured with.
    pub threads: u32,
    /// One row per worker, in node order.
    pub workers: Vec<MeshThreadRow>,
}

/// The serve-mode block of the mesh profile (`serve` object): offered
/// vs achieved load, the client-observed latency distribution with its
/// tail percentiles, and entry-queue waiting.
#[derive(Debug, Clone)]
pub struct MeshServeSummary {
    /// Arrival-process shape (`"poisson"` / `"fixed"`).
    pub kind: String,
    /// Origin distribution (`"uniform"` / `"corner"`).
    pub origins: String,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Offered load in requests per million cycles.
    pub offered_ppm: u64,
    /// Achieved throughput in requests per million cycles.
    pub achieved_ppm: u64,
    /// Requests served.
    pub requests: u64,
    /// Latency percentiles in cycles: p50, p90, p99, p999.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Largest latency in cycles.
    pub max: u64,
    /// Mean cycles spent waiting for entry-queue space.
    pub queue_wait_mean: f64,
    /// Largest entry-queue wait.
    pub queue_wait_max: u64,
    /// Frames migrated by the work-stealing policy (0 under rr/local).
    pub steals: u64,
    /// Log-bucketed latency histogram rows `(lo, hi, requests)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Identity of a mesh run, for [`mesh_profile_json`].
#[derive(Debug, Clone)]
pub struct MeshProfileMeta {
    /// Program name.
    pub program: String,
    /// Implementation label.
    pub implementation: String,
    /// Node count.
    pub nodes: u32,
    /// Mesh X extent.
    pub width: u32,
    /// Mesh Y extent.
    pub height: u32,
    /// Global cycles until completion.
    pub cycles: u64,
    /// Instructions summed over all nodes.
    pub instructions: u64,
}

/// Render the mesh statistics profile (`profile.json` of a mesh run):
/// run identity, per-thread utilization when the run was parallel, the
/// `serve` object when the run served an open-loop workload, plus a
/// `net` object with fabric counters, per-node deliver stalls,
/// per-buffer telemetry, and latency histograms.
pub fn mesh_profile_json(
    meta: &MeshProfileMeta,
    net: &MeshNetSummary,
    parallel: Option<&MeshParallelSummary>,
    serve: Option<&MeshServeSummary>,
) -> String {
    let mut out = String::with_capacity(8 * 1024 + net.links.len() * 220);
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":\"tamsim-mesh-profile/1\",\"program\":{},\"implementation\":{},\
         \"nodes\":{},\"width\":{},\"height\":{},\"cycles\":{},\"instructions\":{},",
        quote(&meta.program),
        quote(&meta.implementation),
        meta.nodes,
        meta.width,
        meta.height,
        meta.cycles,
        meta.instructions
    );

    if let Some(p) = parallel {
        let _ = write!(
            out,
            "\"parallel\":{{\"threads\":{},\"workers\":[",
            p.threads
        );
        for (i, w) in p.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"first_node\":{},\"nodes\":{},\"steps\":{},\"deliveries\":{}}}",
                w.first_node, w.nodes, w.steps, w.deliveries
            );
        }
        out.push_str("]},");
    }

    if let Some(s) = serve {
        let _ = write!(
            out,
            "\"serve\":{{\"kind\":{},\"origins\":{},\"seed\":{},\"offered_ppm\":{},\
             \"achieved_ppm\":{},\
             \"requests\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"mean\":{},\
             \"max\":{},\"queue_wait_mean\":{},\"queue_wait_max\":{},\"steals\":{},\
             \"histogram\":[",
            quote(&s.kind),
            quote(&s.origins),
            s.seed,
            s.offered_ppm,
            s.achieved_ppm,
            s.requests,
            s.p50,
            s.p90,
            s.p99,
            s.p999,
            num(s.mean),
            s.max,
            num(s.queue_wait_mean),
            s.queue_wait_max,
            s.steals
        );
        for (i, (lo, hi, reqs)) in s.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"reqs\":{reqs}}}");
        }
        out.push_str("]},");
    }

    out.push_str("\"net\":{\"stats\":{");
    for (i, (name, value)) in net.stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", quote(name), value);
    }
    out.push_str("},\"deliver_stalls_by_node\":[");
    for (i, s) in net.deliver_stalls_by_node.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    let _ = write!(
        out,
        "],\"traced_msgs\":{},\"dropped\":{},\"unmatched_dispatches\":{},",
        net.traced_msgs, net.dropped, net.unmatched_dispatches
    );

    out.push_str("\"links\":[");
    for (i, l) in net.links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"node\":{},\"link\":{},\"msgs_in\":[{},{}],\"words_in\":[{},{}],\
             \"words_out\":{},\"queued_words\":{},\"busy_cycles\":{},\"high_water\":{},\"stall_cycles\":{}}}",
            l.node,
            quote(&l.link),
            l.msgs_in[0],
            l.msgs_in[1],
            l.words_in[0],
            l.words_in[1],
            l.words_out,
            l.queued_words,
            l.busy_cycles,
            l.high_water,
            l.stall_cycles
        );
    }

    out.push_str("],\"latency\":[");
    for (i, row) in net.latency.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"pri\":\"{}\",\"hops\":{},\"count\":{},\"mean\":{},\"max\":{},\"histogram\":[",
            row.kind,
            row.pri,
            row.hops,
            row.count,
            num(row.mean),
            row.max
        );
        for (j, (lo, hi, count)) in row.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"msgs\":{count}}}");
        }
        out.push_str("]}");
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::NodeTrackSpan;
    use crate::json;

    fn sample_tracks() -> Vec<NodeTrack> {
        vec![
            NodeTrack {
                name: "node 0".to_string(),
                spans: vec![NodeTrackSpan {
                    label: "run",
                    start: 0,
                    cycles: 6,
                }],
            },
            NodeTrack {
                name: "node 1".to_string(),
                spans: vec![NodeTrackSpan {
                    label: "idle",
                    start: 0,
                    cycles: 6,
                }],
            },
        ]
    }

    #[test]
    fn flows_render_matched_arrow_endpoints() {
        let net = MeshNetTrace {
            flows: vec![MeshFlow {
                id: 7,
                src: 0,
                dest: 1,
                label: "msg 7 → n1".to_string(),
                inject: 2,
                send_dur: 3,
                deliver: 5,
                inlet_dur: 1,
            }],
            counters: vec![MeshCounterSample {
                node: 0,
                cycle: 2,
                inject_words: 3,
                recv_words: 0,
                link_words: 0,
            }],
        };
        let trace = mesh_trace_json_traced("fib", "MD", 6, &sample_tracks(), &net);
        json::validate(&trace).expect("traced mesh trace must parse");
        // One flow start on the sender, one bound flow end on the
        // receiver, with the same id.
        assert_eq!(trace.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(trace.matches("\"ph\":\"f\",\"bp\":\"e\"").count(), 1);
        assert_eq!(trace.matches("\"id\":7").count(), 4); // 2 slices + s + f
                                                          // Send and inlet slices ride dedicated net tracks.
        assert!(trace.contains("node 0 net"));
        assert!(trace.contains("node 1 net"));
        // Activity spans plus the two message slices.
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(trace.matches("\"ph\":\"C\"").count(), 1);
        assert!(trace.contains("node 0 buffers (words)"));
    }

    #[test]
    fn empty_net_renders_no_flow_or_counter_events() {
        let trace =
            mesh_trace_json_traced("fib", "MD", 6, &sample_tracks(), &MeshNetTrace::default());
        json::validate(&trace).expect("must parse");
        assert_eq!(trace.matches("\"ph\":\"s\"").count(), 0);
        assert_eq!(trace.matches("\"ph\":\"C\"").count(), 0);
        assert!(!trace.contains("net"));
    }

    #[test]
    fn mesh_profile_is_valid_json_with_the_net_object() {
        let meta = MeshProfileMeta {
            program: "fib".to_string(),
            implementation: "MD".to_string(),
            nodes: 4,
            width: 2,
            height: 2,
            cycles: 100,
            instructions: 321,
        };
        let net = MeshNetSummary {
            stats: vec![("injected_msgs", 9), ("delivered_msgs", 9)],
            deliver_stalls_by_node: vec![0, 2, 0, 0],
            links: vec![MeshLinkRow {
                node: 1,
                link: "west".to_string(),
                msgs_in: [4, 5],
                words_in: [12, 15],
                words_out: 27,
                queued_words: 0,
                busy_cycles: 27,
                high_water: 8,
                stall_cycles: 3,
            }],
            latency: vec![MeshLatencyRow {
                kind: "deliver",
                pri: "high",
                hops: 1,
                count: 9,
                mean: 6.5,
                max: 12,
                buckets: vec![(4, 7, 5), (8, 15, 4)],
            }],
            traced_msgs: 9,
            dropped: 0,
            unmatched_dispatches: 0,
        };
        let profile = mesh_profile_json(&meta, &net, None, None);
        json::validate(&profile).expect("mesh profile must parse");
        assert!(profile.contains("\"schema\":\"tamsim-mesh-profile/1\""));
        assert!(profile.contains("\"deliver_stalls_by_node\":[0,2,0,0]"));
        assert!(profile.contains("\"link\":\"west\""));
        assert!(profile.contains("\"kind\":\"deliver\""));
        assert!(profile.contains("{\"lo\":4,\"hi\":7,\"msgs\":5}"));
        assert!(!profile.contains("\"parallel\""));
        assert!(!profile.contains("\"serve\""));

        let serve = MeshServeSummary {
            kind: "poisson".to_string(),
            origins: "corner".to_string(),
            seed: 42,
            offered_ppm: 20_000,
            achieved_ppm: 18_500,
            requests: 64,
            p50: 180,
            p90: 420,
            p99: 900,
            p999: 1700,
            mean: 231.5,
            max: 1800,
            queue_wait_mean: 0.25,
            queue_wait_max: 12,
            steals: 7,
            buckets: vec![(128, 255, 40), (256, 511, 24)],
        };
        let profile = mesh_profile_json(&meta, &net, None, Some(&serve));
        json::validate(&profile).expect("serve mesh profile must parse");
        assert!(profile.contains(
            "\"serve\":{\"kind\":\"poisson\",\"origins\":\"corner\",\"seed\":42,\
             \"offered_ppm\":20000,\
             \"achieved_ppm\":18500,\"requests\":64,\"p50\":180,\"p90\":420,\
             \"p99\":900,\"p999\":1700,"
        ));
        assert!(profile.contains("{\"lo\":128,\"hi\":255,\"reqs\":40}"));
        assert!(profile.contains("\"queue_wait_max\":12,\"steals\":7"));

        let parallel = MeshParallelSummary {
            threads: 2,
            workers: vec![
                MeshThreadRow {
                    first_node: 0,
                    nodes: 2,
                    steps: 200,
                    deliveries: 5,
                },
                MeshThreadRow {
                    first_node: 2,
                    nodes: 2,
                    steps: 121,
                    deliveries: 4,
                },
            ],
        };
        let profile = mesh_profile_json(&meta, &net, Some(&parallel), None);
        json::validate(&profile).expect("parallel mesh profile must parse");
        assert!(profile.contains("\"parallel\":{\"threads\":2,\"workers\":["));
        assert!(profile.contains("{\"first_node\":2,\"nodes\":2,\"steps\":121,\"deliveries\":4}"));
    }
}
