//! Quantum-level profiler for the TAM simulator.
//!
//! This crate consumes the full observation stream of a machine run — the
//! access trace plus the granularity marks — and turns it into artifacts a
//! human can read:
//!
//! * a **scheduling timeline** ([`Timeline`]) of typed spans (threads per
//!   frame, inlets, system routines, scheduler glue) with per-quantum
//!   statistics matching the paper's granularity analysis;
//! * a **hotspot report** ([`HotspotReport`]) attributing instruction
//!   fetches to named routines per code region (system vs user);
//! * **exporters** for a Chrome-trace/Perfetto `trace.json` and a compact
//!   `profile.json` ([`chrome_trace_json`], [`profile_json`]);
//! * a **run manifest** ([`Manifest`]) recording what produced a results
//!   directory.
//!
//! The crate deliberately depends only on `tamsim-trace` (the narrow
//! waist): the capture type [`ProfileHooks`] implements the trace-level
//! sink traits, so the experiment driver in `tamsim-core` feeds it through
//! the exact same path as any other sink — a profiled run is an ordinary
//! run with an observer attached, and cycle counts are identical by
//! construction.

mod export;
mod hooks;
pub mod hotspot;
pub mod json;
mod manifest;
mod net_trace;
mod symbols;
mod timeline;

use std::fmt;

pub use export::{chrome_trace_json, mesh_trace_json, profile_json, NodeTrack, NodeTrackSpan};
pub use hooks::{ProfileHooks, RawProfile};
pub use hotspot::{HotspotReport, HotspotRow, RegionHotspots};
pub use manifest::{git_revision, Manifest};
pub use net_trace::{
    mesh_profile_json, mesh_trace_json_traced, MeshCounterSample, MeshFlow, MeshLatencyRow,
    MeshLinkRow, MeshNetSummary, MeshNetTrace, MeshParallelSummary, MeshProfileMeta,
    MeshServeSummary, MeshThreadRow,
};
pub use symbols::SymbolTable;
use tamsim_trace::MemoryMap;
// Re-export the event vocabulary so profile consumers need only this crate.
pub use tamsim_trace::{Mark, MarkRecord, Priority, Region};
pub use timeline::{
    CounterSample, Instant, Quantum, QuantumStats, Span, SpanKind, Timeline, Track,
};

/// Errors surfaced by profile analysis.
///
/// Both variants indicate a machine-model bug (the observation stream
/// contained an address that cannot be fetched from), not a user error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsError {
    /// A fetched address lies above the modeled top of memory.
    AddressOutOfRange {
        /// The offending address.
        addr: u32,
    },
    /// A fetched address lies in a data region.
    FetchOutsideCode {
        /// The offending address.
        addr: u32,
        /// The region it classified into.
        region: tamsim_trace::Region,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::AddressOutOfRange { addr } => {
                write!(f, "instruction fetch at {addr:#x} above the top of memory")
            }
            ObsError::FetchOutsideCode { addr, region } => {
                write!(f, "instruction fetch at {addr:#x} inside {}", region.name())
            }
        }
    }
}

impl std::error::Error for ObsError {}

/// Identity of a profiled run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileMeta {
    /// Program name.
    pub program: String,
    /// Implementation label ("am", "am-en", "md").
    pub implementation: String,
}

/// A fully analyzed profile of one run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// What was profiled.
    pub meta: ProfileMeta,
    /// Scheduling timeline and quantum statistics.
    pub timeline: Timeline,
    /// Per-region fetch hotspots.
    pub hotspots: HotspotReport,
    /// Total memory accesses in the run.
    pub accesses: u64,
}

impl Profile {
    /// Number of hotspot rows to keep per region.
    pub const TOP_N: usize = 12;

    /// Analyze a raw capture into a full profile.
    pub fn build(
        meta: ProfileMeta,
        raw: &RawProfile,
        symbols: &SymbolTable,
        map: &MemoryMap,
        codeblock_names: &[&str],
    ) -> Result<Profile, ObsError> {
        let timeline = Timeline::build(&raw.records, raw.cycles, codeblock_names);
        let hotspots = hotspot::attribute(&raw.fetch_counts, symbols, map, Profile::TOP_N)?;
        Ok(Profile {
            meta,
            timeline,
            hotspots,
            accesses: raw.accesses,
        })
    }

    /// Render the Chrome-trace timeline (`trace.json`).
    pub fn trace_json(&self) -> String {
        chrome_trace_json(self)
    }

    /// Render the compact statistics document (`profile.json`).
    pub fn profile_json(&self) -> String {
        profile_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tamsim_trace::{Mark, MarkRecord, Priority};

    #[test]
    fn profile_build_wires_the_pieces_together() {
        let raw = RawProfile {
            records: vec![
                MarkRecord {
                    cycles: [0, 0],
                    mark: Mark::ThreadStart {
                        codeblock: 0,
                        thread: 0,
                    },
                    frame: 0x40_0000,
                    pri: Priority::Low,
                    queue_words: [0, 0],
                },
                MarkRecord {
                    cycles: [4, 0],
                    mark: Mark::ThreadEnd,
                    frame: 0x40_0000,
                    pri: Priority::Low,
                    queue_words: [0, 0],
                },
            ],
            cycles: [4, 0],
            fetch_counts: HashMap::from([(0u32, 4u64)]),
            accesses: 4,
        };
        let symbols = SymbolTable::new(vec![(0, "sys:boot".to_string())]);
        let map = MemoryMap::default();
        let meta = ProfileMeta {
            program: "fib".to_string(),
            implementation: "am".to_string(),
        };
        let p = Profile::build(meta, &raw, &symbols, &map, &["fib"]).unwrap();
        assert_eq!(p.timeline.quanta.count(), 1);
        assert_eq!(p.hotspots.total_fetches, 4);
        json::validate(&p.trace_json()).unwrap();
        json::validate(&p.profile_json()).unwrap();
    }

    #[test]
    fn obs_errors_render_addresses() {
        let e = ObsError::AddressOutOfRange { addr: 0x10 };
        assert!(e.to_string().contains("0x10"));
        let e = ObsError::FetchOutsideCode {
            addr: 0x40_0000,
            region: tamsim_trace::Region::UserData,
        };
        assert!(e.to_string().contains("user data"));
    }
}
