//! Capture side of the profiler: a sink that rides along a machine run.
//!
//! [`ProfileHooks`] implements the two trace-level traits
//! ([`TraceSink`] + [`MarkSink`]) and nothing machine-specific, so the
//! experiment driver can feed it through exactly the same path as any
//! other sink. A profiled run therefore *is* an ordinary run with an
//! observer attached — cycle counts and results are identical by
//! construction, which the differential tests assert.

use std::collections::HashMap;

use tamsim_trace::{Access, AccessKind, Mark, MarkLog, MarkRecord, MarkSink, Priority, TraceSink};

/// A sink that captures everything the profiler needs from one run: the
/// granularity stream (marks + per-priority cycle counters + queue
/// samples) and a fetch histogram keyed by program counter for hotspot
/// attribution.
#[derive(Debug, Default, Clone)]
pub struct ProfileHooks {
    marks: MarkLog,
    fetch_counts: HashMap<u32, u64>,
    accesses: u64,
}

impl ProfileHooks {
    /// A fresh capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the capture into an immutable [`RawProfile`].
    pub fn finish(self) -> RawProfile {
        RawProfile {
            records: self.marks.records,
            cycles: self.marks.cycles,
            fetch_counts: self.fetch_counts,
            accesses: self.accesses,
        }
    }
}

impl TraceSink for ProfileHooks {
    #[inline]
    fn access(&mut self, access: Access) {
        self.accesses += 1;
        if access.kind == AccessKind::Fetch {
            *self.fetch_counts.entry(access.addr).or_insert(0) += 1;
        }
    }
}

impl MarkSink for ProfileHooks {
    #[inline]
    fn instruction(&mut self, pri: Priority, pc: u32) {
        self.marks.instruction(pri, pc);
    }

    #[inline]
    fn queue_sample(&mut self, used_words: [u32; 2]) {
        self.marks.queue_sample(used_words);
    }

    #[inline]
    fn mark(&mut self, mark: Mark, frame: u32, pri: Priority) {
        self.marks.mark(mark, frame, pri);
    }
}

/// The raw capture from one run, before any analysis.
#[derive(Debug, Clone)]
pub struct RawProfile {
    /// Granularity marks in execution order.
    pub records: Vec<MarkRecord>,
    /// Instructions executed per priority over the whole run.
    pub cycles: [u64; 2],
    /// Instruction-fetch count per program counter.
    pub fetch_counts: HashMap<u32, u64>,
    /// Total memory accesses observed (fetches + data).
    pub accesses: u64,
}

impl RawProfile {
    /// Total instructions executed (the run's global cycle count).
    #[inline]
    pub fn total_cycles(&self) -> u64 {
        self.cycles[0] + self.cycles[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_splits_fetches_from_data_accesses() {
        let mut h = ProfileHooks::new();
        h.access(Access::fetch(0x100));
        h.access(Access::fetch(0x100));
        h.access(Access::fetch(0x104));
        h.access(Access::read(0x2000));
        h.instruction(Priority::Low, 0x100);
        h.instruction(Priority::Low, 0x104);
        h.queue_sample([2, 0]);
        h.mark(Mark::ThreadEnd, 0x40, Priority::Low);
        let raw = h.finish();
        assert_eq!(raw.accesses, 4);
        assert_eq!(raw.fetch_counts[&0x100], 2);
        assert_eq!(raw.fetch_counts[&0x104], 1);
        assert!(!raw.fetch_counts.contains_key(&0x2000));
        assert_eq!(raw.total_cycles(), 2);
        assert_eq!(raw.records.len(), 1);
        assert_eq!(raw.records[0].queue_words, [2, 0]);
    }
}
