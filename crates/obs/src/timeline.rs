//! Folding the mark stream into typed spans, tracks, and quantum
//! statistics.
//!
//! The machine emits zero-cost marks at every thread, inlet, and system
//! boundary, each carrying a snapshot of the per-priority instruction
//! counters. Because marks cost nothing, `cycles[0] + cycles[1]` at a mark
//! is the exact global timestamp of that boundary — the builder here only
//! has to pair up start/end marks to recover a full scheduling timeline,
//! no per-instruction log required.
//!
//! # Track model
//!
//! Spans are laid out so that spans on the *same track* never overlap:
//!
//! * one track per activation **frame**, carrying that frame's thread
//!   spans (threads execute sequentially at low priority, and a frame
//!   runs one thread at a time);
//! * one **inlet** track per priority (inlets at one priority are
//!   serviced one at a time);
//! * one **system** track per priority (nested `SysStart`/`SysEnd` pairs
//!   are depth-counted and reported as the outermost span);
//! * one **scheduler** track per priority holding "glue" spans — cycles
//!   executed between marks with no thread, inlet, or system routine
//!   open, i.e. dispatch/scheduling overhead — plus `FrameActivated`
//!   instants.
//!
//! Spans on different tracks routinely overlap (a high-priority inlet
//! interrupting a low-priority thread is the paper's central scenario).

use std::collections::HashMap;

use tamsim_trace::{Mark, MarkRecord, Priority};

/// What kind of execution a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A TAM thread body.
    Thread,
    /// A TAM inlet body.
    Inlet,
    /// A system routine (scheduler, frame allocator, post library, ...).
    Sys,
    /// Cycles between marks with nothing open: dispatch/scheduling glue.
    Other,
}

impl SpanKind {
    /// Category label used by the exporters.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Thread => "thread",
            SpanKind::Inlet => "inlet",
            SpanKind::Sys => "sys",
            SpanKind::Other => "other",
        }
    }
}

/// One closed interval of execution on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Index into [`Timeline::tracks`].
    pub track: usize,
    /// Display name ("fib.t2", "sys", "glue", ...).
    pub name: String,
    /// Span category.
    pub kind: SpanKind,
    /// Priority level the span executed at.
    pub pri: Priority,
    /// Frame pointer associated with the span (0 where not meaningful).
    pub frame: u32,
    /// Global start timestamp in cycles.
    pub start: u64,
    /// Global end timestamp in cycles (`end >= start`).
    pub end: u64,
    /// Instructions executed *at this span's own priority* inside it.
    ///
    /// For spans interrupted by the other priority this is smaller than
    /// `end - start`; the difference is exactly the interruption time.
    pub instructions: u64,
}

/// A named horizontal track of non-overlapping spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Display name.
    pub name: String,
}

/// A zero-duration event on a track (scheduler frame activations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instant {
    /// Index into [`Timeline::tracks`].
    pub track: usize,
    /// Global timestamp in cycles.
    pub at: u64,
    /// Display name.
    pub name: &'static str,
}

/// Message-queue occupancy sampled at a mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Global timestamp in cycles.
    pub at: u64,
    /// Occupied queue words per priority (`[low, high]`).
    pub queue_words: [u32; 2],
}

/// One scheduling quantum: a maximal run of consecutive threads on the
/// same frame (the paper's unit of locality, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantum {
    /// The frame the quantum executed on.
    pub frame: u32,
    /// Global start (first thread's start).
    pub start: u64,
    /// Global end (last thread's end).
    pub end: u64,
    /// Threads executed in the quantum.
    pub threads: u32,
    /// Instructions executed inside the quantum's threads (thread
    /// priority only — excludes interrupting inlets).
    pub cycles: u64,
    /// Inlet activations that began while one of this quantum's threads
    /// was executing (preemptions of the quantum).
    pub interruptions: u32,
}

impl Quantum {
    /// Quantum length in cycles (thread instructions, the paper's metric).
    #[inline]
    pub fn len_cycles(self) -> u64 {
        self.cycles
    }
}

/// Aggregate quantum statistics for one run.
#[derive(Debug, Default, Clone)]
pub struct QuantumStats {
    /// All quanta in execution order.
    pub quanta: Vec<Quantum>,
    /// Total threads executed.
    pub threads: u64,
    /// Total inlet activations.
    pub inlets: u64,
    /// Instructions executed inside thread bodies.
    pub thread_cycles: u64,
    /// Instructions executed inside inlet bodies.
    pub inlet_cycles: u64,
    /// Scheduling events observed: AM scheduler frame activations
    /// (`FrameActivated` marks) plus thread-priority message dispatches
    /// (`InletStart` at low priority — how the MD implementation enters
    /// user code).
    ///
    /// This is finer than the paper's frame-run quantum: consecutive
    /// events on the same frame stay one *quantum* but remain separate
    /// scheduling events, which is what separates the two implementations
    /// on programs whose messages often revisit the current frame — one
    /// AM activation drains a frame's whole RCV where MD takes a
    /// scheduling event per message.
    pub activations: u64,
}

impl QuantumStats {
    /// Number of quanta.
    pub fn count(&self) -> usize {
        self.quanta.len()
    }

    /// Mean threads per quantum (the paper's headline locality metric).
    pub fn threads_per_quantum(&self) -> f64 {
        ratio(self.threads, self.quanta.len() as u64)
    }

    /// Mean threads per scheduling event (see
    /// [`QuantumStats::activations`]); 0 when no events were observed.
    pub fn threads_per_activation(&self) -> f64 {
        ratio(self.threads, self.activations)
    }

    /// Mean instructions per thread body.
    pub fn instructions_per_thread(&self) -> f64 {
        ratio(self.thread_cycles, self.threads)
    }

    /// Mean inlet interruptions per thread.
    pub fn interruptions_per_thread(&self) -> f64 {
        let total: u64 = self.quanta.iter().map(|q| q.interruptions as u64).sum();
        ratio(total, self.threads)
    }

    /// Mean quantum length in cycles.
    pub fn mean_cycles(&self) -> f64 {
        let total: u64 = self.quanta.iter().map(|q| q.cycles).sum();
        ratio(total, self.quanta.len() as u64)
    }

    /// A percentile (0.0–1.0) of quantum length in cycles; 0 when empty.
    pub fn percentile_cycles(&self, p: f64) -> u64 {
        if self.quanta.is_empty() {
            return 0;
        }
        let mut lens: Vec<u64> = self.quanta.iter().map(|q| q.cycles).collect();
        lens.sort_unstable();
        let idx = ((lens.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        lens[idx]
    }

    /// Median quantum length in cycles.
    pub fn median_cycles(&self) -> u64 {
        self.percentile_cycles(0.5)
    }

    /// Longest quantum in cycles.
    pub fn max_cycles(&self) -> u64 {
        self.quanta.iter().map(|q| q.cycles).max().unwrap_or(0)
    }

    /// Histogram of threads-per-quantum: `(threads, quanta)` pairs, dense
    /// from 1 to the maximum observed.
    pub fn threads_histogram(&self) -> Vec<(u32, u64)> {
        let max = self.quanta.iter().map(|q| q.threads).max().unwrap_or(0);
        let mut counts = vec![0u64; max as usize + 1];
        for q in &self.quanta {
            counts[q.threads as usize] += 1;
        }
        (1..=max).map(|t| (t, counts[t as usize])).collect()
    }

    /// Power-of-two histogram of quantum length: `(lo, hi, quanta)` with
    /// half-open buckets `[lo, hi)`.
    pub fn length_histogram(&self) -> Vec<(u64, u64, u64)> {
        if self.quanta.is_empty() {
            return Vec::new();
        }
        let max = self.max_cycles();
        let buckets = 64 - max.leading_zeros() as usize + 1;
        let mut counts = vec![0u64; buckets];
        for q in &self.quanta {
            // Bucket k holds lengths in [2^(k-1), 2^k), bucket 0 holds 0.
            let k = (64 - q.cycles.leading_zeros()) as usize;
            counts[k] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| {
                let lo = if k == 0 { 0 } else { 1u64 << (k - 1) };
                let hi = 1u64 << k;
                (lo, hi, c)
            })
            .collect()
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The complete scheduling timeline of one run.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    /// Tracks, in creation order (frames first by appearance, then the
    /// per-priority inlet/system/scheduler tracks as they are needed).
    pub tracks: Vec<Track>,
    /// All spans; spans sharing a `track` never overlap.
    pub spans: Vec<Span>,
    /// Zero-duration scheduler events.
    pub instants: Vec<Instant>,
    /// Queue-occupancy samples in time order (deduplicated runs).
    pub counters: Vec<CounterSample>,
    /// Quantum statistics derived from the thread spans.
    pub quanta: QuantumStats,
    /// Final per-priority instruction counters.
    pub cycles: [u64; 2],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TrackKey {
    Frame(u32),
    Inlet(Priority),
    Sys(Priority),
    Sched(Priority),
}

struct OpenSpan {
    name: String,
    frame: u32,
    track: usize,
    start: u64,
    start_at_pri: u64,
}

struct Builder<'a> {
    codeblock_names: &'a [&'a str],
    tracks: Vec<Track>,
    track_ids: HashMap<TrackKey, usize>,
    spans: Vec<Span>,
    instants: Vec<Instant>,
    counters: Vec<CounterSample>,
    open_thread: [Option<OpenSpan>; 2],
    open_inlet: [Option<OpenSpan>; 2],
    sys_depth: [u32; 2],
    sys_open: [Option<(u64, u64)>; 2],
    prev_cycles: [u64; 2],
    prev_global: u64,
    // (frame, start, end, instructions) per thread, in start order.
    threads: Vec<(u32, u64, u64, u64)>,
    inlet_starts: Vec<u64>,
    // Scheduling boundaries: FrameActivated / thread-priority InletStart.
    boundaries: Vec<u64>,
}

impl Builder<'_> {
    fn track(&mut self, key: TrackKey) -> usize {
        if let Some(&id) = self.track_ids.get(&key) {
            return id;
        }
        let name = match key {
            TrackKey::Frame(fp) => format!("frame {fp:#010x}"),
            TrackKey::Inlet(p) => format!("inlets ({})", pri_name(p)),
            TrackKey::Sys(p) => format!("system ({})", pri_name(p)),
            TrackKey::Sched(p) => format!("scheduler ({})", pri_name(p)),
        };
        let id = self.tracks.len();
        self.tracks.push(Track { name });
        self.track_ids.insert(key, id);
        id
    }

    fn codeblock_name(&self, cb: u16) -> String {
        match self.codeblock_names.get(cb as usize) {
            Some(name) => (*name).to_string(),
            None => format!("cb{cb}"),
        }
    }

    /// Attribute cycles since the previous mark: any priority that
    /// advanced with no thread, inlet, or system routine open was running
    /// scheduler/dispatch glue.
    fn flush_glue(&mut self, cycles: [u64; 2], global: u64) {
        for p in Priority::ALL {
            let i = p.index();
            let delta = cycles[i] - self.prev_cycles[i];
            let open = self.open_thread[i].is_some()
                || self.open_inlet[i].is_some()
                || self.sys_depth[i] > 0;
            if delta > 0 && !open {
                let track = self.track(TrackKey::Sched(p));
                self.spans.push(Span {
                    track,
                    name: "glue".to_string(),
                    kind: SpanKind::Other,
                    pri: p,
                    frame: 0,
                    start: self.prev_global,
                    end: global,
                    instructions: delta,
                });
            }
        }
    }

    fn close_thread(&mut self, pri: Priority, cycles: [u64; 2], global: u64) {
        if let Some(open) = self.open_thread[pri.index()].take() {
            let instructions = cycles[pri.index()] - open.start_at_pri;
            self.threads
                .push((open.frame, open.start, global, instructions));
            self.spans.push(Span {
                track: open.track,
                name: open.name,
                kind: SpanKind::Thread,
                pri,
                frame: open.frame,
                start: open.start,
                end: global,
                instructions,
            });
        }
    }

    fn close_inlet(&mut self, pri: Priority, cycles: [u64; 2], global: u64) {
        if let Some(open) = self.open_inlet[pri.index()].take() {
            self.spans.push(Span {
                track: open.track,
                name: open.name,
                kind: SpanKind::Inlet,
                pri,
                frame: open.frame,
                start: open.start,
                end: global,
                instructions: cycles[pri.index()] - open.start_at_pri,
            });
        }
    }

    fn close_sys(&mut self, pri: Priority, cycles: [u64; 2], global: u64) {
        if let Some((start, start_at_pri)) = self.sys_open[pri.index()].take() {
            let track = self.track(TrackKey::Sys(pri));
            self.spans.push(Span {
                track,
                name: "sys".to_string(),
                kind: SpanKind::Sys,
                pri,
                frame: 0,
                start,
                end: global,
                instructions: cycles[pri.index()] - start_at_pri,
            });
        }
    }

    fn apply(&mut self, r: &MarkRecord) {
        let global = r.at();
        let i = r.pri.index();
        match r.mark {
            Mark::ThreadStart { codeblock, thread } => {
                // Defensive: a missing ThreadEnd truncates at the next start.
                self.close_thread(r.pri, r.cycles, global);
                let name = format!("{}.t{}", self.codeblock_name(codeblock), thread);
                let track = self.track(TrackKey::Frame(r.frame));
                self.open_thread[i] = Some(OpenSpan {
                    name,
                    frame: r.frame,
                    track,
                    start: global,
                    start_at_pri: r.cycles[i],
                });
            }
            Mark::ThreadEnd => self.close_thread(r.pri, r.cycles, global),
            Mark::InletStart { codeblock, inlet } => {
                self.close_inlet(r.pri, r.cycles, global);
                let name = format!("{}.in{}", self.codeblock_name(codeblock), inlet);
                let track = self.track(TrackKey::Inlet(r.pri));
                self.inlet_starts.push(global);
                if r.pri == Priority::Low {
                    // An MD message dispatch at thread priority.
                    self.boundaries.push(global);
                }
                self.open_inlet[i] = Some(OpenSpan {
                    name,
                    frame: r.frame,
                    track,
                    start: global,
                    start_at_pri: r.cycles[i],
                });
            }
            Mark::InletEnd => self.close_inlet(r.pri, r.cycles, global),
            Mark::SysStart => {
                self.sys_depth[i] += 1;
                if self.sys_depth[i] == 1 {
                    self.sys_open[i] = Some((global, r.cycles[i]));
                }
            }
            Mark::SysEnd => {
                if self.sys_depth[i] > 0 {
                    self.sys_depth[i] -= 1;
                    if self.sys_depth[i] == 0 {
                        self.close_sys(r.pri, r.cycles, global);
                    }
                }
            }
            Mark::FrameActivated => {
                let track = self.track(TrackKey::Sched(r.pri));
                self.boundaries.push(global);
                self.instants.push(Instant {
                    track,
                    at: global,
                    name: "frame activated",
                });
            }
        }
    }

    fn sample_counters(&mut self, r: &MarkRecord) {
        let at = r.at();
        match self.counters.last_mut() {
            Some(last) if last.at == at => last.queue_words = r.queue_words,
            Some(last) if last.queue_words == r.queue_words => {}
            _ => self.counters.push(CounterSample {
                at,
                queue_words: r.queue_words,
            }),
        }
    }

    /// Group the chronological thread list into quanta (a new quantum
    /// starts whenever the frame changes — the same rule the granularity
    /// statistics use) and count inlet interruptions per quantum.
    fn quanta(&self) -> Vec<Quantum> {
        let mut quanta: Vec<Quantum> = Vec::new();
        let mut thread_quantum = Vec::with_capacity(self.threads.len());
        for &(frame, start, end, cycles) in &self.threads {
            match quanta.last_mut() {
                Some(q) if q.frame == frame => {
                    q.end = end;
                    q.threads += 1;
                    q.cycles += cycles;
                }
                _ => quanta.push(Quantum {
                    frame,
                    start,
                    end,
                    threads: 1,
                    cycles,
                    interruptions: 0,
                }),
            }
            thread_quantum.push(quanta.len() - 1);
        }
        // Threads are sequential and both lists are in start order, so a
        // two-pointer sweep attributes each inlet start to the (unique)
        // thread window containing it, if any.
        let mut t = 0usize;
        for &at in &self.inlet_starts {
            while t < self.threads.len() && self.threads[t].2 <= at {
                t += 1;
            }
            if t < self.threads.len() && self.threads[t].1 <= at {
                quanta[thread_quantum[t]].interruptions += 1;
            }
        }
        quanta
    }

    fn finish(mut self, final_cycles: [u64; 2]) -> Timeline {
        let final_global = final_cycles[0] + final_cycles[1];
        self.flush_glue(final_cycles, final_global);
        // Defensive: close anything still open at the end of the run.
        for p in Priority::ALL {
            self.close_thread(p, final_cycles, final_global);
            self.close_inlet(p, final_cycles, final_global);
            self.sys_depth[p.index()] = 0;
            self.close_sys(p, final_cycles, final_global);
        }
        let quanta = self.quanta();
        let stats = QuantumStats {
            activations: self.boundaries.len() as u64,
            threads: self.threads.len() as u64,
            inlets: self.inlet_starts.len() as u64,
            thread_cycles: self.threads.iter().map(|t| t.3).sum(),
            inlet_cycles: self
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Inlet)
                .map(|s| s.instructions)
                .sum(),
            quanta,
        };
        Timeline {
            tracks: self.tracks,
            spans: self.spans,
            instants: self.instants,
            counters: self.counters,
            quanta: stats,
            cycles: final_cycles,
        }
    }
}

fn pri_name(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::High => "high",
    }
}

impl Timeline {
    /// Build a timeline from the retained mark stream of one run.
    ///
    /// `final_cycles` are the run's final per-priority instruction
    /// counters (cycles executed after the last mark become trailing glue
    /// or extend a still-open span). `codeblock_names` maps codeblock ids
    /// to display names; ids beyond the slice fall back to `"cbN"`.
    pub fn build(
        records: &[MarkRecord],
        final_cycles: [u64; 2],
        codeblock_names: &[&str],
    ) -> Timeline {
        let mut b = Builder {
            codeblock_names,
            tracks: Vec::new(),
            track_ids: HashMap::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            counters: Vec::new(),
            open_thread: [None, None],
            open_inlet: [None, None],
            sys_depth: [0, 0],
            sys_open: [None, None],
            prev_cycles: [0, 0],
            prev_global: 0,
            threads: Vec::new(),
            inlet_starts: Vec::new(),
            boundaries: Vec::new(),
        };
        for r in records {
            let global = r.at();
            b.flush_glue(r.cycles, global);
            b.apply(r);
            b.sample_counters(r);
            b.prev_cycles = r.cycles;
            b.prev_global = global;
        }
        b.finish(final_cycles)
    }

    /// Total cycles (instructions) in the run.
    #[inline]
    pub fn total_cycles(&self) -> u64 {
        self.cycles[0] + self.cycles[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycles: [u64; 2], mark: Mark, frame: u32, pri: Priority) -> MarkRecord {
        MarkRecord {
            cycles,
            mark,
            frame,
            pri,
            queue_words: [0, 0],
        }
    }

    fn ts(cb: u16, t: u16) -> Mark {
        Mark::ThreadStart {
            codeblock: cb,
            thread: t,
        }
    }

    /// Two threads on frame A, one on frame B, with a high-priority inlet
    /// interrupting the second thread.
    fn sample_records() -> Vec<MarkRecord> {
        vec![
            rec([2, 0], ts(0, 0), 0x100, Priority::Low),
            rec([10, 0], Mark::ThreadEnd, 0x100, Priority::Low),
            rec([12, 0], ts(0, 1), 0x100, Priority::Low),
            rec(
                [15, 0],
                Mark::InletStart {
                    codeblock: 0,
                    inlet: 0,
                },
                0x100,
                Priority::High,
            ),
            rec([15, 5], Mark::InletEnd, 0x100, Priority::High),
            rec([20, 5], Mark::ThreadEnd, 0x100, Priority::Low),
            rec([22, 5], ts(1, 0), 0x200, Priority::Low),
            rec([30, 5], Mark::ThreadEnd, 0x200, Priority::Low),
        ]
    }

    #[test]
    fn builds_quanta_with_interruptions() {
        let t = Timeline::build(&sample_records(), [31, 5], &["fib", "main"]);
        assert_eq!(t.quanta.count(), 2);
        assert_eq!(t.quanta.threads, 3);
        assert_eq!(t.quanta.inlets, 1);
        let q0 = t.quanta.quanta[0];
        assert_eq!((q0.frame, q0.threads, q0.cycles), (0x100, 2, 16));
        assert_eq!(q0.interruptions, 1);
        let q1 = t.quanta.quanta[1];
        assert_eq!(
            (q1.frame, q1.threads, q1.cycles, q1.interruptions),
            (0x200, 1, 8, 0)
        );
        assert!((t.quanta.threads_per_quantum() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn spans_carry_names_and_priorities() {
        let t = Timeline::build(&sample_records(), [31, 5], &["fib", "main"]);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"fib.t0"));
        assert!(names.contains(&"fib.t1"));
        assert!(names.contains(&"main.t0"));
        assert!(names.contains(&"fib.in0"));
        let inlet = t.spans.iter().find(|s| s.kind == SpanKind::Inlet).unwrap();
        assert_eq!(inlet.pri, Priority::High);
        assert_eq!(inlet.instructions, 5);
        // The inlet spans global time 15..20 (5 high-pri instructions).
        assert_eq!((inlet.start, inlet.end), (15, 20));
    }

    #[test]
    fn glue_fills_unattributed_cycles() {
        let t = Timeline::build(&sample_records(), [31, 5], &[]);
        let glue: u64 = t
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Other)
            .map(|s| s.instructions)
            .sum();
        // Low: 0..2 before t0, 10..12, 20..22 between threads, 30..31 tail.
        assert_eq!(glue, 2 + 2 + 2 + 1);
        // Every low-priority instruction is attributed exactly once.
        let attributed: u64 = t
            .spans
            .iter()
            .filter(|s| s.pri == Priority::Low)
            .map(|s| s.instructions)
            .sum();
        assert_eq!(attributed, 31);
    }

    #[test]
    fn spans_on_one_track_never_overlap() {
        let t = Timeline::build(&sample_records(), [31, 5], &[]);
        for track in 0..t.tracks.len() {
            let mut spans: Vec<&Span> = t.spans.iter().filter(|s| s.track == track).collect();
            spans.sort_by_key(|s| s.start);
            for pair in spans.windows(2) {
                assert!(
                    pair[1].start >= pair[0].end,
                    "overlap on track {track}: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn unknown_codeblocks_fall_back_to_ids() {
        let t = Timeline::build(&sample_records(), [31, 5], &[]);
        assert!(t.spans.iter().any(|s| s.name == "cb0.t0"));
    }

    #[test]
    fn sys_spans_are_depth_counted() {
        let records = vec![
            rec([1, 0], Mark::SysStart, 0, Priority::Low),
            rec([3, 0], Mark::SysStart, 0, Priority::Low),
            rec([6, 0], Mark::SysEnd, 0, Priority::Low),
            rec([9, 0], Mark::SysEnd, 0, Priority::Low),
        ];
        let t = Timeline::build(&records, [10, 0], &[]);
        let sys: Vec<&Span> = t.spans.iter().filter(|s| s.kind == SpanKind::Sys).collect();
        assert_eq!(sys.len(), 1);
        assert_eq!((sys[0].start, sys[0].end, sys[0].instructions), (1, 9, 8));
    }

    #[test]
    fn histograms_cover_all_quanta() {
        let t = Timeline::build(&sample_records(), [31, 5], &[]);
        let th = t.quanta.threads_histogram();
        assert_eq!(th, vec![(1, 1), (2, 1)]);
        let lh = t.quanta.length_histogram();
        let total: u64 = lh.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total as usize, t.quanta.count());
        for &(lo, hi, _) in &lh {
            assert!(lo < hi);
        }
    }

    #[test]
    fn counters_deduplicate_repeated_values() {
        let mut records = sample_records();
        for r in &mut records {
            r.queue_words = [3, 0];
        }
        records[4].queue_words = [3, 1];
        let t = Timeline::build(&records, [31, 5], &[]);
        assert!(t.counters.len() >= 2);
        for pair in t.counters.windows(2) {
            assert!(pair[0].at <= pair[1].at);
            assert!(pair[0].queue_words != pair[1].queue_words || pair[0].at < pair[1].at);
        }
    }

    #[test]
    fn activations_split_on_scheduling_boundaries() {
        // MD-style stream: two messages dispatched to the SAME frame, one
        // thread each. Frame-run quanta merge them; activations do not.
        let records = vec![
            rec(
                [1, 0],
                Mark::InletStart {
                    codeblock: 0,
                    inlet: 0,
                },
                0x100,
                Priority::Low,
            ),
            rec([3, 0], Mark::InletEnd, 0x100, Priority::Low),
            rec([3, 0], ts(0, 0), 0x100, Priority::Low),
            rec([8, 0], Mark::ThreadEnd, 0x100, Priority::Low),
            rec(
                [9, 0],
                Mark::InletStart {
                    codeblock: 0,
                    inlet: 0,
                },
                0x100,
                Priority::Low,
            ),
            rec([11, 0], Mark::InletEnd, 0x100, Priority::Low),
            rec([11, 0], ts(0, 1), 0x100, Priority::Low),
            rec([16, 0], Mark::ThreadEnd, 0x100, Priority::Low),
        ];
        let t = Timeline::build(&records, [17, 0], &[]);
        assert_eq!(t.quanta.count(), 1);
        assert_eq!(t.quanta.activations, 2);
        assert!((t.quanta.threads_per_activation() - 1.0).abs() < 1e-9);
        // High-priority inlets are interruptions, not scheduling events.
        let t = Timeline::build(&sample_records(), [31, 5], &[]);
        assert_eq!(t.quanta.activations, 0);
    }

    #[test]
    fn frame_activations_are_boundaries_and_instants() {
        let records = vec![
            rec([1, 0], Mark::FrameActivated, 0x100, Priority::Low),
            rec([2, 0], ts(0, 0), 0x100, Priority::Low),
            rec([5, 0], Mark::ThreadEnd, 0x100, Priority::Low),
            rec([6, 0], Mark::FrameActivated, 0x100, Priority::Low),
            rec([7, 0], ts(0, 1), 0x100, Priority::Low),
            rec([9, 0], Mark::ThreadEnd, 0x100, Priority::Low),
        ];
        let t = Timeline::build(&records, [10, 0], &[]);
        assert_eq!(t.quanta.count(), 1); // same frame: one frame-run quantum
        assert_eq!(t.quanta.activations, 2); // two scheduler activations
        assert_eq!(t.instants.len(), 2);
    }

    #[test]
    fn empty_run_is_empty_timeline() {
        let t = Timeline::build(&[], [0, 0], &[]);
        assert!(t.spans.is_empty());
        assert_eq!(t.quanta.count(), 0);
        assert_eq!(t.quanta.threads_per_quantum(), 0.0);
        assert_eq!(t.quanta.median_cycles(), 0);
    }
}
