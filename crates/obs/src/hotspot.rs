//! Hotspot attribution: from fetch counts per PC to named routines.
//!
//! The capture hooks histogram instruction fetches by program counter;
//! this module folds that histogram through the linker's symbol table and
//! the memory map into a top-N table per code region (system vs user), the
//! same division the paper uses for its locality analysis.

use std::collections::HashMap;

use tamsim_trace::{MemoryMap, Region};

use crate::{ObsError, SymbolTable};

/// One named routine's share of instruction fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotRow {
    /// Symbol name ("sys:post_lib", "fib.t2", ...).
    pub name: String,
    /// Instruction fetches attributed to the symbol.
    pub fetches: u64,
    /// Share of the fetches in this symbol's region (0.0–1.0).
    pub region_share: f64,
    /// Share of all fetches in the run (0.0–1.0).
    pub total_share: f64,
}

/// Hotspots of one code region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionHotspots {
    /// The region ([`Region::SystemCode`] or [`Region::UserCode`]).
    pub region: Region,
    /// Total fetches in the region.
    pub fetches: u64,
    /// Top rows, sorted by fetches descending (capped at the requested N;
    /// remaining fetches are folded into a final `"(other)"` row).
    pub rows: Vec<HotspotRow>,
}

/// The complete hotspot report for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotReport {
    /// Total instruction fetches in the run.
    pub total_fetches: u64,
    /// Per-region tables, system code first.
    pub regions: Vec<RegionHotspots>,
}

/// Fold a `(pc -> fetches)` histogram into a per-region top-N report.
///
/// Fails if any fetched address lies outside the modeled memory or
/// outside a code region — both indicate a machine-model bug that must
/// not be papered over with an "unknown" bucket.
pub fn attribute(
    fetch_counts: &HashMap<u32, u64>,
    symbols: &SymbolTable,
    map: &MemoryMap,
    top_n: usize,
) -> Result<HotspotReport, ObsError> {
    let mut by_symbol: [HashMap<&str, u64>; 2] = [HashMap::new(), HashMap::new()];
    let mut region_fetches = [0u64; 2];
    let mut total_fetches = 0u64;
    for (&pc, &count) in fetch_counts {
        let region = map
            .try_classify(pc)
            .ok_or(ObsError::AddressOutOfRange { addr: pc })?;
        let slot = match region {
            Region::SystemCode => 0,
            Region::UserCode => 1,
            _ => return Err(ObsError::FetchOutsideCode { addr: pc, region }),
        };
        let name = symbols.resolve(pc).unwrap_or("(unmapped)");
        *by_symbol[slot].entry(name).or_insert(0) += count;
        region_fetches[slot] += count;
        total_fetches += count;
    }

    let regions = [Region::SystemCode, Region::UserCode]
        .into_iter()
        .zip(by_symbol)
        .zip(region_fetches)
        .map(|((region, by_sym), fetches)| {
            let mut rows: Vec<(&str, u64)> = by_sym.into_iter().collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let tail: u64 = rows.iter().skip(top_n).map(|&(_, c)| c).sum();
            rows.truncate(top_n);
            let mut rows: Vec<HotspotRow> = rows
                .into_iter()
                .map(|(name, count)| HotspotRow {
                    name: name.to_string(),
                    fetches: count,
                    region_share: share(count, fetches),
                    total_share: share(count, total_fetches),
                })
                .collect();
            if tail > 0 {
                rows.push(HotspotRow {
                    name: "(other)".to_string(),
                    fetches: tail,
                    region_share: share(tail, fetches),
                    total_share: share(tail, total_fetches),
                });
            }
            RegionHotspots {
                region,
                fetches,
                rows,
            }
        })
        .collect();

    Ok(HotspotReport {
        total_fetches,
        regions,
    })
}

#[inline]
fn share(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SymbolTable, MemoryMap) {
        let map = MemoryMap::default();
        let symbols = SymbolTable::new(vec![
            (0x0, "sys:boot".to_string()),
            (0x100, "sys:post_lib".to_string()),
            (map.user_code_base, "fib.t0".to_string()),
            (map.user_code_base + 0x40, "fib.t1".to_string()),
        ]);
        (symbols, map)
    }

    #[test]
    fn attributes_fetches_to_symbols_per_region() {
        let (symbols, map) = setup();
        let mut counts = HashMap::new();
        counts.insert(0x104, 10u64); // sys:post_lib
        counts.insert(0x108, 5); // sys:post_lib
        counts.insert(0x0, 1); // sys:boot
        counts.insert(map.user_code_base + 0x44, 8); // fib.t1
        let report = attribute(&counts, &symbols, &map, 10).unwrap();
        assert_eq!(report.total_fetches, 24);
        let sys = &report.regions[0];
        assert_eq!(sys.region, Region::SystemCode);
        assert_eq!(sys.fetches, 16);
        assert_eq!(sys.rows[0].name, "sys:post_lib");
        assert_eq!(sys.rows[0].fetches, 15);
        assert!((sys.rows[0].region_share - 15.0 / 16.0).abs() < 1e-9);
        let user = &report.regions[1];
        assert_eq!(user.fetches, 8);
        assert_eq!(user.rows[0].name, "fib.t1");
        assert!((user.rows[0].total_share - 8.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_folds_the_tail_into_other() {
        let (symbols, map) = setup();
        let mut counts = HashMap::new();
        counts.insert(0x0, 7u64); // sys:boot
        counts.insert(0x104, 3); // sys:post_lib
        let report = attribute(&counts, &symbols, &map, 1).unwrap();
        let sys = &report.regions[0];
        assert_eq!(sys.rows.len(), 2);
        assert_eq!(sys.rows[0].name, "sys:boot");
        assert_eq!(sys.rows[1].name, "(other)");
        assert_eq!(sys.rows[1].fetches, 3);
    }

    #[test]
    fn rejects_fetches_outside_code() {
        let (symbols, map) = setup();
        let mut counts = HashMap::new();
        counts.insert(map.frame_base, 1u64);
        assert!(matches!(
            attribute(&counts, &symbols, &map, 10),
            Err(ObsError::FetchOutsideCode { .. })
        ));
        let mut counts = HashMap::new();
        counts.insert(map.top, 1u64);
        assert!(matches!(
            attribute(&counts, &symbols, &map, 10),
            Err(ObsError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_histogram_is_an_empty_report() {
        let (symbols, map) = setup();
        let report = attribute(&HashMap::new(), &symbols, &map, 10).unwrap();
        assert_eq!(report.total_fetches, 0);
        assert!(report.regions.iter().all(|r| r.rows.is_empty()));
    }
}
