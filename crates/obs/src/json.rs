//! Minimal hand-rolled JSON support.
//!
//! The repository deliberately has no external dependencies, so the
//! exporters format JSON with `std::fmt::Write` and the helpers here. A
//! small recursive-descent [`validate`] checker backs the tests (and the
//! acceptance criterion that emitted artifacts parse): it verifies
//! syntactic well-formedness without building a document tree.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Quote and escape a string as a JSON string literal.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Format an `f64` as a JSON number.
///
/// JSON has no NaN/Infinity; non-finite inputs (e.g. a ratio over an empty
/// run) render as `0`. Finite values keep enough precision for the
/// statistics we emit without printing float noise.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Validate that `s` is one well-formed JSON value (with optional trailing
/// whitespace). Returns the byte offset and message of the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let frac = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(quote("x"), "\"x\"");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_formats_json_safely() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(2.5), "2.5000");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }

    #[test]
    fn validates_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            r#"{"a":[1,2,{"b":"c\nd"}],"e":true}"#,
            "  [1, 2, 3]  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "12.",
            "1e",
            "{} trailing",
            "{'single':1}",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
