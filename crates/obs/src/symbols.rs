//! Mapping program counters back to names.
//!
//! The linker (in `tamsim-core`) knows where every system routine, thread,
//! and inlet landed; it hands that layout over as a [`SymbolTable`] so the
//! hotspot attributor can report "sys:post_lib" instead of a bare address.
//! Resolution is "nearest preceding symbol": a PC belongs to the last
//! symbol at or below it, exactly like a linker map file.

/// A sorted table of `(start address, name)` pairs covering the code
/// regions.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    /// Sorted by address, ascending; addresses are unique after merging.
    syms: Vec<(u32, String)>,
}

impl SymbolTable {
    /// Build a table from unordered `(address, name)` pairs.
    ///
    /// Pairs are sorted by address; multiple names at the same address
    /// (e.g. a label alias at a routine entry) are merged into one
    /// `"a/b"` entry so lookups stay unambiguous.
    pub fn new(mut syms: Vec<(u32, String)>) -> Self {
        syms.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut merged: Vec<(u32, String)> = Vec::with_capacity(syms.len());
        for (addr, name) in syms {
            match merged.last_mut() {
                Some((last_addr, last_name)) if *last_addr == addr => {
                    if *last_name != name {
                        last_name.push('/');
                        last_name.push_str(&name);
                    }
                }
                _ => merged.push((addr, name)),
            }
        }
        SymbolTable { syms: merged }
    }

    /// The name covering `pc`: the last symbol with `addr <= pc`, or
    /// `None` when `pc` precedes every symbol.
    pub fn resolve(&self, pc: u32) -> Option<&str> {
        let idx = self.syms.partition_point(|(addr, _)| *addr <= pc);
        idx.checked_sub(1).map(|i| self.syms[i].1.as_str())
    }

    /// Number of (merged) symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Iterate `(address, name)` in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.syms.iter().map(|(a, n)| (*a, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new(vec![
            (0x100, "sys:falloc".to_string()),
            (0x40, "sys:post_lib".to_string()),
            (0x100, "sys:falloc_entry".to_string()),
            (0x200, "fib.t0".to_string()),
        ])
    }

    #[test]
    fn resolves_nearest_preceding_symbol() {
        let t = table();
        assert_eq!(t.resolve(0x40), Some("sys:post_lib"));
        assert_eq!(t.resolve(0xfc), Some("sys:post_lib"));
        assert_eq!(t.resolve(0x104), Some("sys:falloc/sys:falloc_entry"));
        assert_eq!(t.resolve(0x1000), Some("fib.t0"));
        assert_eq!(t.resolve(0x3c), None);
    }

    #[test]
    fn merges_aliases_at_the_same_address() {
        let t = table();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn empty_table_resolves_nothing() {
        let t = SymbolTable::default();
        assert!(t.is_empty());
        assert_eq!(t.resolve(0), None);
    }
}
