//! JSON exporters: a Chrome-trace/Perfetto timeline and a compact
//! statistics profile.
//!
//! `trace.json` follows the Chrome trace-event format (the JSON-object
//! flavor with a `traceEvents` array) so it loads directly into
//! `ui.perfetto.dev` or `chrome://tracing`: tracks become named threads,
//! spans become complete (`"ph":"X"`) slices, queue occupancy and quantum
//! occupancy become counter (`"ph":"C"`) tracks. Timestamps are cycles,
//! written as microseconds (1 cycle = 1 us) so the viewers' zoom levels
//! behave.

use std::fmt::Write as _;

use crate::json::{num, quote};
use crate::{Profile, SpanKind};

pub(crate) const PID: u32 = 1;
/// Counter tracks get thread ids above every real track.
const COUNTER_TID_BASE: usize = 1_000_000;

/// Render the profile as a Chrome trace-event JSON document.
pub fn chrome_trace_json(p: &Profile) -> String {
    let mut out = String::with_capacity(64 * 1024 + p.timeline.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"program\":{},\"implementation\":{},\"total_cycles\":{}",
        quote(&p.meta.program),
        quote(&p.meta.implementation),
        p.timeline.total_cycles()
    );
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    let mut event = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&s);
    };

    let process_name = format!("tamsim {} ({})", p.meta.program, p.meta.implementation);
    event(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            quote(&process_name)
        ),
        &mut out,
    );
    for (tid, track) in p.timeline.tracks.iter().enumerate() {
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                quote(&track.name)
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
        );
    }

    for s in &p.timeline.spans {
        let pri = match s.pri {
            tamsim_trace::Priority::Low => "low",
            tamsim_trace::Priority::High => "high",
        };
        let mut args = format!("\"pri\":\"{pri}\",\"instructions\":{}", s.instructions);
        if s.kind == SpanKind::Thread || s.kind == SpanKind::Inlet {
            let _ = write!(args, ",\"frame\":\"{:#010x}\"", s.frame);
        }
        event(
            format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"name\":{},\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                s.track,
                quote(&s.name),
                s.kind.category(),
                s.start,
                s.end - s.start
            ),
            &mut out,
        );
    }

    for i in &p.timeline.instants {
        event(
            format!(
                "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"name\":{},\"cat\":\"sched\",\"ts\":{},\"s\":\"t\"}}",
                i.track,
                quote(i.name),
                i.at
            ),
            &mut out,
        );
    }

    // Queue-depth counter track (one series per priority).
    for c in &p.timeline.counters {
        event(
            format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"name\":\"queue depth (words)\",\"ts\":{},\"args\":{{\"low\":{},\"high\":{}}}}}",
                COUNTER_TID_BASE,
                c.at,
                c.queue_words[0],
                c.queue_words[1]
            ),
            &mut out,
        );
    }

    // Remembered-continuation-vector occupancy proxy: how many threads the
    // quantum drains from its frame, stepped at quantum boundaries.
    for q in &p.timeline.quanta.quanta {
        event(
            format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"name\":\"rcv occupancy (threads)\",\"ts\":{},\"args\":{{\"threads\":{}}}}}",
                COUNTER_TID_BASE + 1,
                q.start,
                q.threads
            ),
            &mut out,
        );
        event(
            format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"name\":\"rcv occupancy (threads)\",\"ts\":{},\"args\":{{\"threads\":0}}}}",
                COUNTER_TID_BASE + 1,
                q.end
            ),
            &mut out,
        );
    }

    out.push_str("]}");
    out
}

/// One span of a mesh node's timeline ([`mesh_trace_json`]).
#[derive(Debug, Clone, Copy)]
pub struct NodeTrackSpan {
    /// Slice name shown in the viewer ("run", "stall", ...).
    pub label: &'static str,
    /// First cycle of the span.
    pub start: u64,
    /// Span length in cycles.
    pub cycles: u64,
}

/// One mesh node's timeline: a named Perfetto track of cycle spans. Kept
/// free of simulator types so the exporter stays generic; the mesh driver
/// adapts its run-length activity encoding into this shape.
#[derive(Debug, Clone)]
pub struct NodeTrack {
    /// Track (thread) name, e.g. `"node 3"`.
    pub name: String,
    /// Spans in time order.
    pub spans: Vec<NodeTrackSpan>,
}

/// Render a mesh run as a Chrome trace-event JSON document with one
/// track per node, loadable in `ui.perfetto.dev`: what every node was
/// doing on every global cycle, side by side. Delegates to
/// [`crate::net_trace::mesh_trace_json_traced`] with an empty network
/// trace — traced runs add message flows and occupancy counters on top.
pub fn mesh_trace_json(
    program: &str,
    implementation: &str,
    total_cycles: u64,
    tracks: &[NodeTrack],
) -> String {
    crate::net_trace::mesh_trace_json_traced(
        program,
        implementation,
        total_cycles,
        tracks,
        &crate::net_trace::MeshNetTrace::default(),
    )
}

/// Render the compact statistics profile (`profile.json`).
pub fn profile_json(p: &Profile) -> String {
    let q = &p.timeline.quanta;
    let mut out = String::with_capacity(8 * 1024);
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":\"tamsim-profile/1\",\"program\":{},\"implementation\":{},",
        quote(&p.meta.program),
        quote(&p.meta.implementation)
    );
    let _ = write!(
        out,
        "\"cycles\":{{\"total\":{},\"low\":{},\"high\":{}}},\"accesses\":{},",
        p.timeline.total_cycles(),
        p.timeline.cycles[0],
        p.timeline.cycles[1],
        p.accesses
    );
    let _ = write!(
        out,
        "\"quanta\":{{\"count\":{},\"threads\":{},\"inlets\":{},\"activations\":{},\"thread_cycles\":{},\"inlet_cycles\":{},\
         \"threads_per_quantum\":{},\"threads_per_activation\":{},\"instructions_per_thread\":{},\"interruptions_per_thread\":{},\
         \"mean_cycles\":{},\"median_cycles\":{},\"p90_cycles\":{},\"max_cycles\":{}}},",
        q.count(),
        q.threads,
        q.inlets,
        q.activations,
        q.thread_cycles,
        q.inlet_cycles,
        num(q.threads_per_quantum()),
        num(q.threads_per_activation()),
        num(q.instructions_per_thread()),
        num(q.interruptions_per_thread()),
        num(q.mean_cycles()),
        q.median_cycles(),
        q.percentile_cycles(0.9),
        q.max_cycles()
    );

    out.push_str("\"quantum_length_histogram\":[");
    for (i, (lo, hi, count)) in q.length_histogram().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"quanta\":{count}}}");
    }
    out.push_str("],\"threads_per_quantum_histogram\":[");
    for (i, (threads, count)) in q.threads_histogram().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"threads\":{threads},\"quanta\":{count}}}");
    }
    out.push_str("],");

    let _ = write!(
        out,
        "\"hotspots\":{{\"total_fetches\":{},\"regions\":[",
        p.hotspots.total_fetches
    );
    for (i, region) in p.hotspots.regions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"region\":{},\"fetches\":{},\"symbols\":[",
            quote(region.region.name()),
            region.fetches
        );
        for (j, row) in region.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"fetches\":{},\"region_share\":{},\"total_share\":{}}}",
                quote(&row.name),
                row.fetches,
                num(row.region_share),
                num(row.total_share)
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}}");
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use tamsim_trace::{Mark, MarkRecord, MemoryMap, Priority};

    use super::*;
    use crate::{json, ProfileMeta, SymbolTable, Timeline};

    fn sample_profile() -> Profile {
        let records = vec![
            MarkRecord {
                cycles: [1, 0],
                mark: Mark::ThreadStart {
                    codeblock: 0,
                    thread: 0,
                },
                frame: 0x40_0000,
                pri: Priority::Low,
                queue_words: [2, 0],
            },
            MarkRecord {
                cycles: [9, 0],
                mark: Mark::ThreadEnd,
                frame: 0x40_0000,
                pri: Priority::Low,
                queue_words: [1, 0],
            },
        ];
        let timeline = Timeline::build(&records, [10, 0], &["fib"]);
        let map = MemoryMap::default();
        let symbols = SymbolTable::new(vec![(0, "sys:boot".to_string())]);
        let mut fetch_counts = HashMap::new();
        fetch_counts.insert(0u32, 10u64);
        let hotspots = crate::hotspot::attribute(&fetch_counts, &symbols, &map, 5).unwrap();
        Profile {
            meta: ProfileMeta {
                program: "fib".to_string(),
                implementation: "am".to_string(),
            },
            timeline,
            hotspots,
            accesses: 12,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let trace = chrome_trace_json(&sample_profile());
        json::validate(&trace).expect("trace.json must parse");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("fib.t0"));
        assert!(trace.contains("queue depth (words)"));
        assert!(trace.contains("rcv occupancy (threads)"));
    }

    #[test]
    fn mesh_trace_has_one_track_per_node() {
        let tracks = vec![
            NodeTrack {
                name: "node 0".to_string(),
                spans: vec![
                    NodeTrackSpan {
                        label: "run",
                        start: 0,
                        cycles: 5,
                    },
                    NodeTrackSpan {
                        label: "stall",
                        start: 5,
                        cycles: 2,
                    },
                ],
            },
            NodeTrack {
                name: "node 1".to_string(),
                spans: vec![NodeTrackSpan {
                    label: "run",
                    start: 3,
                    cycles: 4,
                }],
            },
        ];
        let trace = mesh_trace_json("fib", "MD", 7, &tracks);
        json::validate(&trace).expect("mesh trace must parse");
        assert!(trace.contains("\"nodes\":2"));
        assert!(trace.contains("node 0"));
        assert!(trace.contains("node 1"));
        assert!(trace.contains("\"name\":\"stall\""));
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn profile_json_is_valid_and_carries_the_statistics() {
        let profile = profile_json(&sample_profile());
        json::validate(&profile).expect("profile.json must parse");
        assert!(profile.contains("\"schema\":\"tamsim-profile/1\""));
        assert!(profile.contains("\"threads_per_quantum\":1"));
        assert!(profile.contains("\"total_fetches\":10"));
        assert!(profile.contains("sys:boot"));
    }
}
