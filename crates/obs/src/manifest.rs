//! Run manifests: what produced a results artifact, recorded next to it.
//!
//! Every directory of emitted results gets a `manifest.json` capturing the
//! program, implementation, lowering and machine configuration, the git
//! revision of the simulator, and wall time — enough to reproduce (or
//! distrust) any number in the artifacts without spelunking shell history.

use std::fmt::Write as _;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{num, quote};

/// A reproducibility record for one results directory.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Producing tool ("tamsim").
    pub tool: String,
    /// Crate version of the producer.
    pub version: String,
    /// The full command line that produced the artifacts.
    pub command: String,
    /// Program name(s), comma-separated for suite runs.
    pub program: String,
    /// Implementation label(s) ("am", "am-en", "md").
    pub implementation: String,
    /// Lowering options as `(flag, enabled)` pairs.
    pub lowering: Vec<(String, bool)>,
    /// Machine/cache configuration as `(key, value)` pairs.
    pub config: Vec<(String, String)>,
    /// `git rev-parse HEAD` of the working tree, or "unknown".
    pub git_revision: String,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Unix timestamp (seconds) when the manifest was written.
    pub created_unix: u64,
}

impl Manifest {
    /// A manifest stamped with tool, version, git revision, and creation
    /// time; the caller fills in the run-specific fields.
    pub fn new(command: impl Into<String>) -> Self {
        Manifest {
            tool: "tamsim".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            command: command.into(),
            git_revision: git_revision(),
            created_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            ..Manifest::default()
        }
    }

    /// Render as a `manifest.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let _ = write!(
            out,
            "\"tool\":{},\"version\":{},\"command\":{},\"program\":{},\"implementation\":{},",
            quote(&self.tool),
            quote(&self.version),
            quote(&self.command),
            quote(&self.program),
            quote(&self.implementation)
        );
        out.push_str("\"lowering\":{");
        for (i, (flag, enabled)) in self.lowering.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", quote(flag), enabled);
        }
        out.push_str("},\"config\":{");
        for (i, (key, value)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", quote(key), quote(value));
        }
        out.push_str("},");
        let _ = write!(
            out,
            "\"git_revision\":{},\"wall_seconds\":{},\"created_unix\":{}",
            quote(&self.git_revision),
            num(self.wall_seconds),
            self.created_unix
        );
        out.push('}');
        out
    }
}

/// The git revision of the current working tree, or `"unknown"` when git
/// is unavailable or the tree is not a repository.
pub fn git_revision() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn manifest_renders_valid_json() {
        let mut m = Manifest::new("tamsim profile fib --impl am");
        m.program = "fib".to_string();
        m.implementation = "am".to_string();
        m.lowering = vec![
            ("md_specialize".to_string(), true),
            ("md_store_elim".to_string(), false),
        ];
        m.config = vec![("queue_words".to_string(), "4096".to_string())];
        m.wall_seconds = 0.25;
        let json_text = m.to_json();
        json::validate(&json_text).expect("manifest.json must parse");
        assert!(json_text.contains("\"tool\":\"tamsim\""));
        assert!(json_text.contains("\"md_specialize\":true"));
        assert!(json_text.contains("\"queue_words\":\"4096\""));
        assert!(json_text.contains("\"git_revision\":"));
    }

    #[test]
    fn git_revision_is_nonempty() {
        // Either a real hash (in a checkout) or the "unknown" fallback.
        assert!(!git_revision().is_empty());
    }
}
