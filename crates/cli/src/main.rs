//! `tamsim` — regenerate every table and figure of Spertus & Dally,
//! "Evaluating the Locality Benefits of Active Messages" (PPOPP 1995).
//!
//! ```text
//! tamsim [--small] [--out DIR] [COMMAND]
//!
//! COMMANDS
//!   all        everything below (default)
//!   table1     TAM-construct → MDP-mechanism mapping
//!   table2     granularity + cycle ratios at 8K 4-way
//!   figure1    scheduling-order contrast
//!   figure2    enabled vs unenabled AM granularity (§2.4)
//!   figure3    geomean ratio vs cache size, 1/2/4-way
//!   figure4    per-program ratios, 4-way
//!   figure5    per-program ratios, direct-mapped
//!   figure6    geomean excluding SS, direct-mapped
//!   accesses   §3.1 reads/writes/fetches MD/AM
//!   blocks     block-size sweep (§3.3)
//!   perf       time the Figure 3 sweep, record/replay vs the legacy
//!              inline path; verify identical CSVs; write
//!              results/perf_summary.json
//!   disasm     dump the lowered code of fib(5) under both back-ends
//!   run FILE   parse a textual TAM program and run it under all
//!              three implementations
//!
//! OPTIONS
//!   --small    run the reduced-size suite (fast smoke run)
//!   --out DIR  write .txt/.csv outputs under DIR (default: results)
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use tamsim_cache::{paper_sweep, CacheGeometry, PAPER_BLOCK_SWEEP};
use tamsim_core::Implementation;
use tamsim_metrics as metrics;
use tamsim_metrics::{SuiteData, Table};
use tamsim_programs::PaperBenchmark;

struct Args {
    small: bool,
    out: PathBuf,
    command: String,
    extra: Vec<String>,
}

fn parse_args() -> Args {
    let mut small = false;
    let mut out = PathBuf::from("results");
    let mut command = None::<String>;
    let mut extra = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "tamsim [--small] [--out DIR] \
                     [table1|table2|figure1..figure6|accesses|blocks|perf|disasm|run FILE|all]"
                );
                std::process::exit(0);
            }
            c if !c.starts_with('-') => {
                if command.is_none() {
                    command = Some(c.to_string());
                } else {
                    extra.push(c.to_string());
                }
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    Args {
        small,
        out,
        command: command.unwrap_or_else(|| "all".to_string()),
        extra,
    }
}

fn write_out(dir: &Path, name: &str, text: &str, csv: Option<&str>) {
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join(format!("{name}.txt")), text).expect("write txt");
    if let Some(csv) = csv {
        fs::write(dir.join(format!("{name}.csv")), csv).expect("write csv");
    }
}

fn emit(dir: &Path, name: &str, title: &str, table: &Table) {
    let text = format!("{title}\n\n{}", table.to_text());
    println!("## {title}\n\n{}", table.to_text());
    write_out(dir, name, &text, Some(&table.to_csv()));
}

fn emit_series(dir: &Path, stem: &str, title: &str, series: Vec<(u64, Table)>) {
    for (cost, table) in series {
        emit(
            dir,
            &format!("{stem}_miss{cost}"),
            &format!("{title} (miss = {cost} cycles)"),
            &table,
        );
    }
}

/// Benchmark the record/replay trace engine against the legacy inline
/// path on the full 24-configuration Figure 3 sweep, check that the two
/// produce identical figures, and leave a machine-readable summary at
/// `DIR/perf_summary.json` so future changes have a trajectory to compare
/// against.
fn run_perf(suite: &[PaperBenchmark], small: bool, dir: &Path) {
    let impls = [Implementation::Md, Implementation::Am];
    let geometries = paper_sweep();
    let n_configs = geometries.len();
    eprintln!(
        "perf: {} programs x {} impls over {} cache configs",
        suite.len(),
        impls.len(),
        geometries.len()
    );

    // Baseline: the legacy streaming path (untraced probe run, then a
    // traced re-run fanning every access to all configs serially).
    let t0 = Instant::now();
    let inline = SuiteData::collect_inline(suite.to_vec(), &impls, geometries.clone());
    let inline_seconds = t0.elapsed().as_secs_f64();
    eprintln!("  inline path        : {inline_seconds:.3} s");

    // Record once / replay in parallel.
    let t1 = Instant::now();
    let (recorded, phases) = SuiteData::collect_timed(suite.to_vec(), &impls, geometries);
    let recorded_seconds = t1.elapsed().as_secs_f64();
    eprintln!(
        "  record/replay path : {recorded_seconds:.3} s \
         (machine {:.3} s + replay {:.3} s, {} events)",
        phases.machine_seconds, phases.replay_seconds, phases.events
    );

    // The optimisation must be invisible in the results: identical CSVs.
    let csv_of = |data: &SuiteData| -> Vec<(u64, String)> {
        metrics::figure3(data)
            .into_iter()
            .map(|(cost, t)| (cost, t.to_csv()))
            .collect()
    };
    let inline_csv = csv_of(&inline);
    let recorded_csv = csv_of(&recorded);
    assert_eq!(
        inline_csv, recorded_csv,
        "record/replay figures diverged from the inline path"
    );
    emit_series(
        dir,
        "figure3",
        "Figure 3: geomean MD/AM cycle ratio vs cache size",
        metrics::figure3(&recorded),
    );

    let speedup = inline_seconds / recorded_seconds;
    println!("## perf: Figure 3 sweep, inline vs record/replay\n");
    println!("inline (probe + traced fan-out) : {inline_seconds:>8.3} s");
    println!("record/replay                   : {recorded_seconds:>8.3} s");
    println!(
        "  machine (record) phase        : {:>8.3} s",
        phases.machine_seconds
    );
    println!(
        "  cache (replay) phase          : {:>8.3} s",
        phases.replay_seconds
    );
    println!("events recorded                 : {:>8}", phases.events);
    println!("speedup                         : {speedup:>8.2}x");

    let json = format!(
        "{{\n  \"suite\": \"{}\",\n  \"programs\": {},\n  \"implementations\": {},\n  \
         \"cache_configs\": {},\n  \"events_recorded\": {},\n  \
         \"inline_seconds\": {:.6},\n  \"recorded_seconds\": {:.6},\n  \
         \"machine_seconds\": {:.6},\n  \"replay_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"identical_csv\": true\n}}\n",
        if small { "small" } else { "paper" },
        suite.len(),
        impls.len(),
        n_configs,
        phases.events,
        inline_seconds,
        recorded_seconds,
        phases.machine_seconds,
        phases.replay_seconds,
        speedup,
    );
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join("perf_summary.json"), json).expect("write perf_summary.json");
    eprintln!("wrote {}", dir.join("perf_summary.json").display());
}

const COMMANDS: &[&str] = &[
    "all", "table1", "table2", "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "accesses", "blocks", "perf", "disasm", "run",
];

fn main() {
    let args = parse_args();
    if !COMMANDS.contains(&args.command.as_str()) {
        eprintln!(
            "unknown command '{}'; expected one of: {}",
            args.command,
            COMMANDS.join("|")
        );
        std::process::exit(2);
    }
    let suite: Vec<PaperBenchmark> = if args.small {
        tamsim_programs::small_suite()
    } else {
        tamsim_programs::paper_suite()
    };
    let dir = args.out.clone();
    if args.command == "perf" {
        run_perf(&suite, args.small, &dir);
        return;
    }
    let needs_data = matches!(
        args.command.as_str(),
        "all" | "table2" | "figure3" | "figure4" | "figure5" | "figure6" | "accesses" | "blocks"
    );

    // One traced run per (program, implementation) feeds every figure:
    // the paper's 24-configuration sweep plus the block-size variants.
    let data: Option<SuiteData> = needs_data.then(|| {
        let mut geometries = paper_sweep();
        for &b in &PAPER_BLOCK_SWEEP {
            if b != 64 {
                geometries.push(CacheGeometry::new(8192, 4, b));
            }
        }
        let t0 = Instant::now();
        let data = SuiteData::collect(
            suite.clone(),
            &[Implementation::Md, Implementation::Am],
            geometries,
        );
        eprintln!(
            "collected {} traced runs in {:.1?}",
            data.names.len() * 2,
            t0.elapsed()
        );
        data
    });

    let cmd = args.command.as_str();
    let all = cmd == "all";

    if all || cmd == "table1" {
        let text = metrics::table1();
        println!("## Table 1: TAM constructs on the J-Machine\n\n{text}");
        write_out(&dir, "table1", &text, None);
    }
    if all || cmd == "table2" {
        emit(
            &dir,
            "table2",
            "Table 2: granularity and MD/AM cycle ratios (8K 4-way, 64B blocks)",
            &metrics::table2(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "figure1" {
        let text = metrics::figure1();
        println!("## Figure 1: scheduling order (child codeblock)\n\n{text}");
        write_out(&dir, "figure1", &text, None);
    }
    if all || cmd == "figure2" {
        emit(
            &dir,
            "figure2",
            "Figure 2 / §2.4: unenabled vs enabled AM",
            &metrics::figure2(&suite),
        );
    }
    if all || cmd == "figure3" {
        emit_series(
            &dir,
            "figure3",
            "Figure 3: geomean MD/AM cycle ratio vs cache size",
            metrics::figure3(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "figure4" {
        emit_series(
            &dir,
            "figure4",
            "Figure 4: per-program MD/AM ratio, 4-way set-associative",
            metrics::figure_per_program(data.as_ref().unwrap(), 4),
        );
    }
    if all || cmd == "figure5" {
        emit_series(
            &dir,
            "figure5",
            "Figure 5: per-program MD/AM ratio, direct-mapped",
            metrics::figure_per_program(data.as_ref().unwrap(), 1),
        );
    }
    if all || cmd == "figure6" {
        emit(
            &dir,
            "figure6",
            "Figure 6: geomean excluding SS, direct-mapped",
            &metrics::figure6(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "accesses" {
        let data = data.as_ref().unwrap();
        emit(
            &dir,
            "accesses",
            "§3.1: MD accesses as a fraction of AM",
            &metrics::accesses(data),
        );
        emit(
            &dir,
            "regions_md",
            "§3.1 detail: MD accesses by region",
            &metrics::region_breakdown(data, Implementation::Md),
        );
        emit(
            &dir,
            "regions_am",
            "§3.1 detail: AM accesses by region",
            &metrics::region_breakdown(data, Implementation::Am),
        );
    }
    if cmd == "run" {
        let path = args
            .extra
            .first()
            .cloned()
            .expect("usage: tamsim run FILE.tam");
        let source = fs::read_to_string(&path).expect("read program file");
        let program = tamsim_tam::parse_program(&source).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!(
            "{}: {} codeblocks, {} static ops",
            program.name,
            program.codeblocks.len(),
            program.static_ops()
        );
        for impl_ in [
            Implementation::Am,
            Implementation::AmEnabled,
            Implementation::Md,
        ] {
            let out = tamsim_core::Experiment::new(impl_).run(&program);
            let result: Vec<String> = out.result.iter().map(|w| w.as_i64().to_string()).collect();
            println!(
                "  {:5}: result [{}]  {} instructions, tpq {:.1}",
                impl_.label(),
                result.join(", "),
                out.instructions,
                out.granularity.tpq()
            );
        }
        return;
    }
    if cmd == "disasm" {
        // A small program keeps the listing readable; the point is to
        // inspect how the two lowerings differ.
        use tamsim_mdp::disasm_region;
        let program = tamsim_programs::fib(5);
        for impl_ in [Implementation::Am, Implementation::Md] {
            let linked = tamsim_core::Experiment::new(impl_).link(&program);
            let map = linked.cfg.map;
            println!("==== {} system code ====", impl_.label());
            println!(
                "{}",
                disasm_region(&linked.code, map.system_code_base, linked.code.sys_len())
            );
            println!("==== {} user code ====", impl_.label());
            println!(
                "{}",
                disasm_region(&linked.code, map.user_code_base, linked.code.user_len())
            );
        }
    }
    if all || cmd == "blocks" {
        emit(
            &dir,
            "blocks",
            "§3.3: block-size sweep (8K 4-way, miss 24; normalized to 64B)",
            &metrics::block_sweep(data.as_ref().unwrap(), &PAPER_BLOCK_SWEEP),
        );
    }
}
