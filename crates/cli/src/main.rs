//! `tamsim` — regenerate every table and figure of Spertus & Dally,
//! "Evaluating the Locality Benefits of Active Messages" (PPOPP 1995),
//! and profile individual runs at quantum granularity.
//!
//! Run `tamsim --help` (or bare `tamsim`) for the command list.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use tamsim_cache::{paper_sweep, CacheGeometry, PAPER_BLOCK_SWEEP};
use tamsim_core::{Experiment, Implementation, LoweringOptions};
use tamsim_metrics as metrics;
use tamsim_metrics::{SuiteData, Table};
use tamsim_obs::Manifest;
use tamsim_programs::PaperBenchmark;
use tamsim_tam::Program;

/// One-line descriptions for `--help` and the bare-invocation listing.
const COMMANDS: &[(&str, &str)] = &[
    ("all", "regenerate every table and figure below"),
    ("table1", "TAM-construct to MDP-mechanism mapping"),
    ("table2", "granularity + cycle ratios at 8K 4-way"),
    ("figure1", "scheduling-order contrast"),
    ("figure2", "enabled vs unenabled AM granularity (S2.4)"),
    ("figure3", "geomean ratio vs cache size, 1/2/4-way"),
    ("figure4", "per-program ratios, 4-way"),
    ("figure5", "per-program ratios, direct-mapped"),
    ("figure6", "geomean excluding SS, direct-mapped"),
    ("accesses", "S3.1 reads/writes/fetches MD/AM"),
    ("blocks", "block-size sweep (S3.3)"),
    (
        "profile PROG",
        "quantum-level profile of one program: trace.json (Perfetto), profile.json, manifest.json",
    ),
    (
        "mesh PROG",
        "run one program on a multi-node mesh (--nodes, --impl, --policy rr|local|steal, \
         --threads N); writes mesh_trace.json",
    ),
    (
        "serve [PROG]",
        "open-loop request serving on the mesh: deterministic arrivals (--rate, \
         --requests, --arrivals, --origins, --seed), achieved throughput and tail \
         latency; writes serve_latency.csv",
    ),
    (
        "perf",
        "time the Figure 3 sweep (record/replay vs inline) or, with --mesh, the mesh \
         drivers (fast-forward vs lockstep); write results/*perf_summary.json",
    ),
    (
        "disasm",
        "dump the lowered code of fib(5) under both back-ends",
    ),
    (
        "run FILE",
        "parse a textual TAM program and run it under all three implementations",
    ),
    (
        "fuzz",
        "differential fuzzing: generated TAM programs under all three implementations",
    ),
];

fn help_text() -> String {
    let mut out = String::new();
    out.push_str(
        "tamsim - reproduce Spertus & Dally, \"Evaluating the Locality Benefits of \
         Active Messages\" (PPOPP 1995)\n\nUSAGE\n  tamsim [OPTIONS] COMMAND [ARGS]\n\nCOMMANDS\n",
    );
    for (name, desc) in COMMANDS {
        out.push_str(&format!("  {name:<14} {desc}\n"));
    }
    out.push_str(
        "\nOPTIONS\n  \
         --small        run the reduced-size suite (fast smoke run)\n  \
         --out DIR      write outputs under DIR (default: results)\n  \
         --impl IMPL    profile/mesh: am | am-en | md | all (default: am)\n  \
         --nodes N      mesh, serve, perf --mesh: node count, factored into a near-square \
         mesh (default: 4)\n  \
         --policy P     mesh, serve: frame placement, rr | local | steal (default: rr)\n  \
         --rate R       serve only: offered load, requests per 1000 cycles (default: 20)\n  \
         --requests N   serve only: total requests to inject (default: 32)\n  \
         --arrivals A   serve only: arrival process, poisson | fixed (default: poisson)\n  \
         --origins O    serve only: request origins, uniform | corner (default: uniform); \
         corner aims every request at node 0 — the skewed-load scenario the steal \
         policy rebalances\n  \
         --iters N      fuzz only: iterations to run (default: 100)\n  \
         --seed S       fuzz, serve: master seed (default: 1)\n  \
         --shrink       fuzz only: minimize the first failure and write a reproducer\n  \
         --mutate       fuzz only: seed a deliberate MD bug (harness self-test)\n  \
         --mesh         fuzz: also cross-check the mesh (bit-identity, lockstep vs \
         fast-forward); perf: benchmark the mesh drivers\n  \
         --trace-net    mesh only: full causal message tracing (per-message lifecycle \
         records, flow arrows in mesh_trace.json, occupancy counters); without it a \
         bounded ring still feeds the latency histograms\n  \
         --threads N    mesh, serve, perf --mesh: host worker threads for the parallel driver \
         (TAMSIM_JOBS is honoured when the flag is absent); results are bit-identical \
         at every thread count, but message tracing is off, so the latency histograms \
         are skipped; incompatible with --trace-net\n  \
         --no-predecode run/profile/mesh/perf: interpret with the baseline enum-walking \
         dispatch instead of the pre-decoded path (escape hatch; results are \
         bit-identical); fuzz: skip the dispatch cross-check\n  \
         -h, --help     show this help\n",
    );
    out
}

struct Args {
    small: bool,
    out: PathBuf,
    impl_: String,
    nodes: u32,
    policy: String,
    rate: f64,
    requests: u32,
    arrivals: String,
    origins: String,
    iters: u64,
    seed: u64,
    shrink: bool,
    mutate: bool,
    mesh: bool,
    no_predecode: bool,
    trace_net: bool,
    threads: Option<u32>,
    command: Option<String>,
    extra: Vec<String>,
}

impl Args {
    /// Lowering/simulator options honouring `--no-predecode`.
    fn opts(&self) -> LoweringOptions {
        LoweringOptions {
            predecode: !self.no_predecode,
            ..LoweringOptions::default()
        }
    }

    /// Worker-thread request for mesh runs: explicit `--threads` wins,
    /// else the `TAMSIM_JOBS` environment override, else `None` (serial,
    /// with the default ring-traced latency histograms).
    fn mesh_threads(&self) -> Option<u32> {
        self.threads.or_else(|| {
            std::env::var("TAMSIM_JOBS")
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
        })
    }
}

fn parse_args() -> Args {
    fn need(it: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("error: flag '{flag}' needs {what}");
            std::process::exit(2);
        })
    }
    fn numeric(flag: &str, value: &str) -> u64 {
        // Accept decimal or 0x-prefixed hex (fuzz seeds are printed in hex).
        let parsed = if let Some(hex) = value.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            value.parse()
        };
        parsed.unwrap_or_else(|_| {
            eprintln!("error: flag '{flag}' needs a number, got '{value}'");
            std::process::exit(2);
        })
    }
    let mut small = false;
    let mut out = PathBuf::from("results");
    let mut impl_ = "am".to_string();
    let mut nodes = 4u32;
    let mut policy = "rr".to_string();
    let mut rate = 20.0f64;
    let mut requests = 32u32;
    let mut arrivals = "poisson".to_string();
    let mut origins = "uniform".to_string();
    let mut iters = 100u64;
    let mut seed = 1u64;
    let mut shrink = false;
    let mut mutate = false;
    let mut mesh = false;
    let mut no_predecode = false;
    let mut trace_net = false;
    let mut threads = None::<u32>;
    let mut command = None::<String>;
    let mut extra = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--out" => out = PathBuf::from(need(&mut it, "--out", "a directory argument")),
            "--impl" => impl_ = need(&mut it, "--impl", "a value (am | am-en | md | all)"),
            "--nodes" => {
                nodes = numeric("--nodes", &need(&mut it, "--nodes", "a node count")) as u32
            }
            "--policy" => policy = need(&mut it, "--policy", "a value (rr | local | steal)"),
            "--rate" => {
                let v = need(&mut it, "--rate", "requests per 1000 cycles");
                rate = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: flag '--rate' needs a number, got '{v}'");
                    std::process::exit(2);
                });
            }
            "--requests" => {
                requests = numeric(
                    "--requests",
                    &need(&mut it, "--requests", "a request count"),
                ) as u32
            }
            "--arrivals" => arrivals = need(&mut it, "--arrivals", "a value (poisson | fixed)"),
            "--origins" => origins = need(&mut it, "--origins", "a value (uniform | corner)"),
            "--iters" => iters = numeric("--iters", &need(&mut it, "--iters", "a count")),
            "--seed" => seed = numeric("--seed", &need(&mut it, "--seed", "a seed")),
            "--shrink" => shrink = true,
            "--mutate" => mutate = true,
            "--mesh" => mesh = true,
            "--no-predecode" => no_predecode = true,
            "--trace-net" => trace_net = true,
            "--threads" => {
                threads =
                    Some(numeric("--threads", &need(&mut it, "--threads", "a thread count")) as u32)
            }
            "--help" | "-h" => {
                print!("{}", help_text());
                std::process::exit(0);
            }
            c if !c.starts_with('-') => {
                if command.is_none() {
                    command = Some(c.to_string());
                } else {
                    extra.push(c.to_string());
                }
            }
            other => {
                eprintln!("error: unknown flag '{other}' (run 'tamsim --help' for usage)");
                std::process::exit(2);
            }
        }
    }
    Args {
        small,
        out,
        impl_,
        nodes,
        policy,
        rate,
        requests,
        arrivals,
        origins,
        iters,
        seed,
        shrink,
        mutate,
        mesh,
        no_predecode,
        trace_net,
        threads,
        command,
        extra,
    }
}

fn write_out(dir: &Path, name: &str, text: &str, csv: Option<&str>) {
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join(format!("{name}.txt")), text).expect("write txt");
    if let Some(csv) = csv {
        fs::write(dir.join(format!("{name}.csv")), csv).expect("write csv");
    }
}

fn emit(dir: &Path, name: &str, title: &str, table: &Table) {
    let text = format!("{title}\n\n{}", table.to_text());
    println!("## {title}\n\n{}", table.to_text());
    write_out(dir, name, &text, Some(&table.to_csv()));
}

fn emit_series(dir: &Path, stem: &str, title: &str, series: Vec<(u64, Table)>) {
    for (cost, table) in series {
        emit(
            dir,
            &format!("{stem}_miss{cost}"),
            &format!("{title} (miss = {cost} cycles)"),
            &table,
        );
    }
}

/// Write `manifest.json` next to the artifacts in `dir`, recording what
/// produced them (see `tamsim_obs::Manifest`).
fn write_manifest(
    dir: &Path,
    program: &str,
    implementation: &str,
    lowering: Vec<(String, bool)>,
    config: Vec<(String, String)>,
    started: Instant,
) {
    let command: Vec<String> = std::env::args().collect();
    let mut m = Manifest::new(command.join(" "));
    m.program = program.to_string();
    m.implementation = implementation.to_string();
    m.lowering = lowering;
    m.config = config;
    m.wall_seconds = started.elapsed().as_secs_f64();
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join("manifest.json"), m.to_json()).expect("write manifest.json");
    eprintln!("wrote {}", dir.join("manifest.json").display());
}

fn lowering_pairs(exp: &Experiment) -> Vec<(String, bool)> {
    vec![
        ("md_specialize".to_string(), exp.opts.md_specialize),
        ("md_store_elim".to_string(), exp.opts.md_store_elim),
        (
            "md_stop_to_suspend".to_string(),
            exp.opts.md_stop_to_suspend,
        ),
        ("predecode".to_string(), exp.opts.predecode),
    ]
}

/// Resolve a program name for `tamsim profile`: `fib`, or any paper
/// benchmark by its Table 2 name (case-insensitive).
fn resolve_program(name: &str, small: bool) -> Program {
    if name.eq_ignore_ascii_case("fib") {
        return tamsim_programs::fib(if small { 8 } else { 10 });
    }
    let suite = if small {
        tamsim_programs::small_suite()
    } else {
        tamsim_programs::paper_suite()
    };
    for b in suite {
        if b.name.eq_ignore_ascii_case(name) {
            return b.program;
        }
    }
    let names: Vec<&str> = std::iter::once("fib")
        .chain(
            tamsim_programs::paper_suite()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>(),
        )
        .collect();
    eprintln!(
        "error: unknown program '{name}'; expected one of: {}",
        names.join(", ")
    );
    std::process::exit(2);
}

fn resolve_impls(spec: &str) -> Vec<Implementation> {
    match spec {
        "am" => vec![Implementation::Am],
        "am-en" => vec![Implementation::AmEnabled],
        "md" => vec![Implementation::Md],
        "all" => vec![
            Implementation::Am,
            Implementation::AmEnabled,
            Implementation::Md,
        ],
        other => {
            eprintln!("error: unknown --impl value '{other}'; expected am | am-en | md | all");
            std::process::exit(2);
        }
    }
}

/// `tamsim profile PROG [--impl am|am-en|md|all] [--out DIR]`: run the
/// program under a profiling observer and emit `trace.json` (Chrome
/// trace-event format, loads in ui.perfetto.dev), `profile.json` (quantum
/// histograms and hotspots), and `manifest.json`. With one implementation
/// the artifacts land directly in DIR; with several, in `DIR/<impl>/`.
fn run_profile(args: &Args) {
    let started = Instant::now();
    let Some(prog_name) = args.extra.first().cloned() else {
        eprintln!("usage: tamsim profile PROG [--impl am|am-en|md|all] [--out DIR]");
        std::process::exit(2);
    };
    let program = resolve_program(&prog_name, args.small);
    let impls = resolve_impls(&args.impl_);
    let single = impls.len() == 1;

    let mut profiles = Vec::new();
    for &impl_ in &impls {
        let exp = Experiment::new(impl_).with_opts(args.opts());
        let profiled = exp.run_profiled(&program);
        let profile = profiled
            .profile()
            .unwrap_or_else(|e| panic!("profile analysis failed: {e}"));

        let dir = if single {
            args.out.clone()
        } else {
            args.out.join(impl_.label().to_ascii_lowercase())
        };
        fs::create_dir_all(&dir).expect("create results dir");
        fs::write(dir.join("trace.json"), profile.trace_json()).expect("write trace.json");
        fs::write(dir.join("profile.json"), profile.profile_json()).expect("write profile.json");
        write_manifest(
            &dir,
            &profiled.program,
            impl_.label(),
            lowering_pairs(&exp),
            vec![
                (
                    "queue_words_low".to_string(),
                    profiled.run.queue_words[0].to_string(),
                ),
                (
                    "queue_words_high".to_string(),
                    profiled.run.queue_words[1].to_string(),
                ),
            ],
            started,
        );
        eprintln!(
            "wrote {} and {}",
            dir.join("trace.json").display(),
            dir.join("profile.json").display()
        );
        profiles.push(profile);
    }

    let refs: Vec<&tamsim_obs::Profile> = profiles.iter().collect();
    let summary = metrics::quantum_summary(&refs);
    let histogram = metrics::quantum_histogram(&refs);
    println!(
        "## Quantum statistics: {} ({})\n\n{}",
        program.name,
        args.impl_,
        summary.to_text()
    );
    println!("## Threads per quantum\n\n{}", histogram.to_text());
    let quantum_text = format!(
        "Quantum statistics: {}\n\n{}\nThreads per quantum\n\n{}",
        program.name,
        summary.to_text(),
        histogram.to_text()
    );
    write_out(&args.out, "quantum", &quantum_text, Some(&summary.to_csv()));
    for p in &refs {
        let table = metrics::hotspot_table(p);
        println!(
            "## Hotspots: {} ({})\n\n{}",
            p.meta.program,
            p.meta.implementation,
            table.to_text()
        );
    }
}

/// `tamsim mesh PROG [--nodes N] [--impl am|am-en|md|all]
/// [--policy rr|local|steal] [--trace-net] [--out DIR]`: run one program on an N-node mesh under
/// the given back-end(s), print the run summary, per-node cycle
/// accounting, and message-latency histograms, and write the
/// observability artifacts: a Perfetto trace with one track per node
/// plus causal message-flow arrows (`mesh_trace.json`), the per-link
/// telemetry heatmap (`mesh_links.csv`), and the mesh statistics profile
/// (`profile.json`). `--trace-net` keeps every message's lifecycle
/// record and adds buffer-occupancy counter tracks; by default a bounded
/// ring feeds the histograms at negligible cost. (With several
/// back-ends, everything lands under `DIR/<impl>/`.)
fn run_mesh(args: &Args) {
    use tamsim_net::{MeshExperiment, NetTraceMode, PlacementPolicy};
    let started = Instant::now();
    let Some(prog_name) = args.extra.first().cloned() else {
        eprintln!(
            "usage: tamsim mesh PROG [--nodes N] [--impl am|am-en|md|all] \
             [--policy rr|local|steal] [--out DIR]"
        );
        std::process::exit(2);
    };
    let program = resolve_program(&prog_name, args.small);
    let impls = resolve_impls(&args.impl_);
    let policy = PlacementPolicy::parse(&args.policy).unwrap_or_else(|| {
        eprintln!(
            "error: unknown --policy value '{}'; expected {}",
            args.policy,
            PlacementPolicy::labels()
        );
        std::process::exit(2);
    });
    let single = impls.len() == 1;

    // `--threads` (or TAMSIM_JOBS) selects the parallel driver family,
    // which is untraced: the run keeps every always-on observable
    // (bit-identical to serial at any thread count) but skips message
    // lifecycle records, so the latency histograms are absent. Without a
    // thread request the serial driver runs with the default bounded
    // ring feeding the histograms.
    let threads = args.mesh_threads();
    if args.trace_net && threads.is_some_and(|t| t > 1) {
        eprintln!(
            "error: --trace-net needs the serial driver; drop --threads (or unset TAMSIM_JOBS)"
        );
        std::process::exit(2);
    }
    let mode = if args.trace_net {
        NetTraceMode::Full
    } else if threads.is_some() {
        NetTraceMode::Off
    } else {
        NetTraceMode::Ring(2048)
    };
    for &impl_ in &impls {
        let mut exp = MeshExperiment::new(impl_, args.nodes)
            .with_placement(policy)
            .with_threads(threads.unwrap_or(1))
            .traced(mode);
        exp.opts = args.opts();
        let r = exp.run(&program);
        println!(
            "## mesh: {} ({}) on {} node(s) [{}x{}], policy {}{}\n",
            program.name,
            impl_.label(),
            r.nodes,
            r.width,
            r.height,
            r.policy.label(),
            match &r.thread_stats {
                Some(ts) => format!(", {} worker thread(s)", ts.len()),
                None => String::new(),
            }
        );
        println!(
            "cycles {}  instructions {}  halt {:?}  messages {} ({} words, {} hops)  \
             NI stall cycles {}\n",
            r.cycles,
            r.instructions,
            r.halt,
            r.net.delivered_msgs,
            r.net.delivered_words,
            r.net.hop_traversals,
            r.total_stall_cycles(),
        );
        let steals: u64 = r.steals.iter().sum();
        if steals > 0 {
            println!(
                "frames migrated {} (imbalance {:.3})\n",
                steals,
                metrics::load_imbalance(&r)
            );
        }
        println!("{}", metrics::mesh_node_table(&r).to_text());
        if let Some(trace) = &r.net_trace {
            println!(
                "## message latency ({} traced, {} dropped)\n\n{}",
                trace.records.len(),
                trace.dropped,
                metrics::mesh_latency_table(trace).to_text()
            );
        }

        let dir = if single {
            args.out.clone()
        } else {
            args.out.join(impl_.label().to_ascii_lowercase())
        };
        emit(
            &dir,
            "mesh_links",
            &format!(
                "link telemetry: {} ({}) on {} node(s)",
                program.name,
                impl_.label(),
                r.nodes
            ),
            &metrics::mesh_links_table(&r),
        );
        // One Perfetto track per node (idle cycles stay as gaps) plus the
        // network layer: message-flow arrows and, in full trace mode,
        // buffer-occupancy counters.
        fs::write(
            dir.join("mesh_trace.json"),
            tamsim_obs::mesh_trace_json_traced(
                &program.name,
                impl_.label(),
                r.cycles,
                &metrics::node_tracks(&r),
                &metrics::net_trace_view(&r),
            ),
        )
        .expect("write mesh_trace.json");
        fs::write(
            dir.join("profile.json"),
            metrics::mesh_profile(&r, &program.name),
        )
        .expect("write profile.json");
        write_manifest(
            &dir,
            &program.name,
            impl_.label(),
            Vec::new(),
            vec![
                ("nodes".to_string(), r.nodes.to_string()),
                ("mesh".to_string(), format!("{}x{}", r.width, r.height)),
                ("policy".to_string(), r.policy.label().to_string()),
                (
                    "steals".to_string(),
                    r.steals.iter().sum::<u64>().to_string(),
                ),
                ("cycles".to_string(), r.cycles.to_string()),
                ("queue_words_low".to_string(), r.queue_words[0].to_string()),
                ("queue_words_high".to_string(), r.queue_words[1].to_string()),
                (
                    "trace_net".to_string(),
                    match mode {
                        NetTraceMode::Full => "full",
                        NetTraceMode::Off => "off",
                        _ => "ring",
                    }
                    .to_string(),
                ),
                ("threads".to_string(), threads.unwrap_or(1).to_string()),
            ],
            started,
        );
        eprintln!(
            "wrote {} and {}",
            dir.join("mesh_trace.json").display(),
            dir.join("profile.json").display()
        );
    }
}

/// Seed offset separating the generated request program from the arrival
/// stream: `tamsim serve --seed S` must be able to vary the offered-load
/// schedule without changing the workload, and vice versa.
const SERVE_PROGRAM_SEED: u64 = 0x5345_5256;

/// `tamsim serve [PROG] [--rate R] [--requests N] [--seed S]
/// [--arrivals poisson|fixed] [--origins uniform|corner] [--nodes N]
/// [--impl am|am-en|md|all] [--policy rr|local|steal] [--threads N]
/// [--out DIR]`: open-loop request
/// serving on a mesh. A deterministic arrival process injects independent
/// requests — invocations of PROG's `main`, or of a small generated
/// call-DAG program (the fuzz generator's validated builder) when PROG is
/// omitted — across the nodes, and the report compares achieved
/// throughput against the offered load with p50/p90/p99/p999 completion
/// latency. Artifacts per back-end: `serve_latency.csv` (the load/latency
/// row), `serve_requests.csv` (per-request lifecycle),
/// `serve_depth.csv` (per-node outstanding-request timeline),
/// `profile.json` (with a `serve` object), and `manifest.json`. Records
/// are bit-identical across lockstep, fast-forward, and any `--threads`
/// count, so every artifact byte-compares across drivers.
fn run_serve(args: &Args) {
    use tamsim_net::{ArrivalKind, MeshExperiment, OriginDist, PlacementPolicy, ServeConfig};
    let started = Instant::now();
    let program = match args.extra.first() {
        Some(name) => resolve_program(name, args.small),
        None => tamsim_check::generate(
            args.seed ^ SERVE_PROGRAM_SEED,
            &tamsim_check::GenConfig::default(),
        ),
    };
    let impls = resolve_impls(&args.impl_);
    let policy = PlacementPolicy::parse(&args.policy).unwrap_or_else(|| {
        eprintln!(
            "error: unknown --policy value '{}'; expected {}",
            args.policy,
            PlacementPolicy::labels()
        );
        std::process::exit(2);
    });
    let kind = match args.arrivals.as_str() {
        "poisson" => ArrivalKind::Poisson,
        "fixed" => ArrivalKind::Fixed,
        other => {
            eprintln!("error: unknown --arrivals value '{other}'; expected poisson | fixed");
            std::process::exit(2);
        }
    };
    let origins = OriginDist::parse(&args.origins).unwrap_or_else(|| {
        eprintln!(
            "error: unknown --origins value '{}'; expected uniform | corner",
            args.origins
        );
        std::process::exit(2);
    });
    let rate_ppm = (args.rate * 1000.0).round() as u64;
    if rate_ppm == 0 {
        eprintln!("error: --rate must be positive (requests per 1000 cycles)");
        std::process::exit(2);
    }
    let cfg = ServeConfig {
        rate_ppm,
        requests: args.requests,
        seed: args.seed,
        kind,
        origins,
    };
    let threads = args.mesh_threads();
    let single = impls.len() == 1;
    for &impl_ in &impls {
        let mut exp = MeshExperiment::new(impl_, args.nodes)
            .with_placement(policy)
            .with_threads(threads.unwrap_or(1));
        exp.opts = args.opts();
        let r = exp.serve(&program, &cfg);
        println!(
            "## serve: {} ({}) on {} node(s) [{}x{}], policy {}, {} {} arrival(s) at {}/Mcycle\n",
            program.name,
            impl_.label(),
            r.mesh.nodes,
            r.mesh.width,
            r.mesh.height,
            r.mesh.policy.label(),
            cfg.requests,
            metrics::arrival_kind_label(kind),
            cfg.rate_ppm,
        );
        println!(
            "cycles {}  offered {} req/Mcycle  achieved {} req/Mcycle\n",
            r.mesh.cycles,
            cfg.rate_ppm,
            r.achieved_ppm(),
        );
        let dir = if single {
            args.out.clone()
        } else {
            args.out.join(impl_.label().to_ascii_lowercase())
        };
        emit(
            &dir,
            "serve_latency",
            &format!(
                "serve load/latency: {} ({}) on {} node(s)",
                program.name,
                impl_.label(),
                r.mesh.nodes
            ),
            &metrics::serve_latency_table(&[&r]),
        );
        fs::write(
            dir.join("serve_requests.csv"),
            metrics::serve_requests_table(&r).to_csv(),
        )
        .expect("write serve_requests.csv");
        fs::write(
            dir.join("serve_depth.csv"),
            metrics::serve_depth_table(&r).to_csv(),
        )
        .expect("write serve_depth.csv");
        fs::write(
            dir.join("profile.json"),
            metrics::serve_profile(&r, &program.name),
        )
        .expect("write profile.json");
        write_manifest(
            &dir,
            &program.name,
            impl_.label(),
            Vec::new(),
            vec![
                ("nodes".to_string(), r.mesh.nodes.to_string()),
                (
                    "mesh".to_string(),
                    format!("{}x{}", r.mesh.width, r.mesh.height),
                ),
                ("policy".to_string(), r.mesh.policy.label().to_string()),
                (
                    "arrivals".to_string(),
                    metrics::arrival_kind_label(kind).to_string(),
                ),
                ("origins".to_string(), cfg.origins.label().to_string()),
                ("rate_ppm".to_string(), cfg.rate_ppm.to_string()),
                ("requests".to_string(), cfg.requests.to_string()),
                ("seed".to_string(), cfg.seed.to_string()),
                ("cycles".to_string(), r.mesh.cycles.to_string()),
                ("achieved_ppm".to_string(), r.achieved_ppm().to_string()),
                (
                    "steals".to_string(),
                    r.mesh.steals.iter().sum::<u64>().to_string(),
                ),
                ("threads".to_string(), threads.unwrap_or(1).to_string()),
            ],
            started,
        );
        eprintln!(
            "wrote {} and {}",
            dir.join("serve_latency.csv").display(),
            dir.join("profile.json").display()
        );
    }
}

/// Benchmark the record/replay trace engine against the legacy inline
/// path on the full 24-configuration Figure 3 sweep, check that the two
/// produce identical figures, and leave a machine-readable summary at
/// `DIR/perf_summary.json` so future changes have a trajectory to compare
/// against.
/// Touch a few large, short-lived buffers before timing anything. Freeing
/// mmap'd blocks teaches glibc to raise its dynamic mmap threshold, so the
/// trace-log chunks allocated by the timed phases come from the main arena
/// and their pages stay resident across phases. Without this, whichever
/// phase happens to allocate big first pays ~100 MB of one-shot page
/// faults and the phase comparison skews by hundreds of milliseconds.
fn warm_allocator() {
    // Raise glibc's dynamic mmap threshold: each free of an mmap'd block
    // bumps the threshold to that block's size, so later trace-log chunks
    // come from the arena instead of fresh mmaps.
    for shift in [22usize, 23, 24, 25] {
        let mut v = vec![0u8; 1 << shift];
        for i in (0..v.len()).step_by(4096) {
            v[i] = 1;
        }
        std::hint::black_box(&mut v);
    }
    // Grow the arena to the sweep's live footprint (the recorded traces are
    // held in memory between the record and replay phases) and fault every
    // page in, so the heap the timed phases run on is already resident.
    let mut arena: Vec<Vec<u8>> = Vec::new();
    for _ in 0..48 {
        let mut v = vec![0u8; 4 << 20];
        for i in (0..v.len()).step_by(4096) {
            v[i] = 1;
        }
        arena.push(v);
    }
    std::hint::black_box(&mut arena);
}

fn run_perf(suite: &[PaperBenchmark], small: bool, dir: &Path, opts: LoweringOptions) {
    let impls = [Implementation::Md, Implementation::Am];
    let geometries = paper_sweep();
    let n_configs = geometries.len();
    eprintln!(
        "perf: {} programs x {} impls over {} cache configs",
        suite.len(),
        impls.len(),
        geometries.len()
    );
    warm_allocator();

    // Baseline: the legacy streaming path (untraced probe run, then a
    // traced re-run fanning every access to all configs serially).
    let t0 = Instant::now();
    let inline =
        SuiteData::collect_inline_with_opts(suite.to_vec(), &impls, geometries.clone(), opts);
    let inline_seconds = t0.elapsed().as_secs_f64();
    eprintln!("  inline path        : {inline_seconds:.3} s");

    // Record once / replay in parallel.
    let t1 = Instant::now();
    let (recorded, phases) =
        SuiteData::collect_timed_with_opts(suite.to_vec(), &impls, geometries, opts);
    let recorded_seconds = t1.elapsed().as_secs_f64();
    eprintln!(
        "  record/replay path : {recorded_seconds:.3} s \
         (machine {:.3} s + replay {:.3} s, {} events)",
        phases.machine_seconds, phases.replay_seconds, phases.events
    );

    // Dispatch micro-benchmark: plain unrecorded, hook-free runs of each
    // program (MD + AM summed), baseline enum-walking interpreter vs the
    // pre-decoded path. Hook-free runs isolate pure dispatch speed: event
    // emission monomorphizes away under `NoHooks`. Runs after the sweep
    // timings so its allocations can't perturb them.
    let time_dispatch = |predecode: bool| -> Vec<(f64, u64)> {
        suite
            .iter()
            .map(|b| {
                let o = LoweringOptions {
                    predecode,
                    ..LoweringOptions::default()
                };
                let t = Instant::now();
                let mut instructions = 0u64;
                for impl_ in impls {
                    instructions += Experiment::new(impl_)
                        .with_opts(o)
                        .run(&b.program)
                        .instructions;
                }
                (t.elapsed().as_secs_f64(), instructions)
            })
            .collect()
    };
    let dispatch_base = time_dispatch(false);
    let dispatch_dec = time_dispatch(true);
    let base_total: f64 = dispatch_base.iter().map(|(s, _)| s).sum();
    let dec_total: f64 = dispatch_dec.iter().map(|(s, _)| s).sum();
    let dispatch_speedup = base_total / dec_total;

    println!("## perf: interpreter dispatch, baseline vs pre-decoded\n");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "program", "base_s", "dec_s", "base_mips", "dec_mips", "speedup"
    );
    let mut dispatch_rows = Vec::new();
    for (b, ((bs, bi), (ds, di))) in suite
        .iter()
        .zip(dispatch_base.iter().zip(dispatch_dec.iter()))
    {
        assert_eq!(
            bi, di,
            "{}: dispatch paths retired different instruction counts",
            b.name
        );
        let base_mips = *bi as f64 / bs / 1e6;
        let dec_mips = *di as f64 / ds / 1e6;
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.1} {:>10.1} {:>7.2}x",
            b.name,
            bs,
            ds,
            base_mips,
            dec_mips,
            bs / ds
        );
        dispatch_rows.push(format!(
            "    {{\"name\": \"{}\", \"baseline_seconds\": {:.6}, \"decoded_seconds\": {:.6}, \
             \"baseline_mips\": {:.1}, \"decoded_mips\": {:.1}, \"speedup\": {:.3}}}",
            b.name,
            bs,
            ds,
            base_mips,
            dec_mips,
            bs / ds
        ));
    }
    println!(
        "{:<10} {:>10.3} {:>10.3} {:>10} {:>10} {:>7.2}x\n",
        "total", base_total, dec_total, "", "", dispatch_speedup
    );

    // The optimisation must be invisible in the results: identical CSVs.
    let csv_of = |data: &SuiteData| -> Vec<(u64, String)> {
        metrics::figure3(data)
            .into_iter()
            .map(|(cost, t)| (cost, t.to_csv()))
            .collect()
    };
    let inline_csv = csv_of(&inline);
    let recorded_csv = csv_of(&recorded);
    assert_eq!(
        inline_csv, recorded_csv,
        "record/replay figures diverged from the inline path"
    );
    emit_series(
        dir,
        "figure3",
        "Figure 3: geomean MD/AM cycle ratio vs cache size",
        metrics::figure3(&recorded),
    );

    let speedup = inline_seconds / recorded_seconds;
    println!("## perf: Figure 3 sweep, inline vs record/replay\n");
    println!("inline (probe + traced fan-out) : {inline_seconds:>8.3} s");
    println!("record/replay                   : {recorded_seconds:>8.3} s");
    println!(
        "  machine (record) phase        : {:>8.3} s",
        phases.machine_seconds
    );
    println!(
        "  cache (replay) phase          : {:>8.3} s",
        phases.replay_seconds
    );
    println!("events recorded                 : {:>8}", phases.events);
    println!("speedup                         : {speedup:>8.2}x");

    let json = format!(
        "{{\n  \"suite\": \"{}\",\n  \"programs\": {},\n  \"implementations\": {},\n  \
         \"cache_configs\": {},\n  \"events_recorded\": {},\n  \
         \"inline_seconds\": {:.6},\n  \"recorded_seconds\": {:.6},\n  \
         \"machine_seconds\": {:.6},\n  \"replay_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"predecode\": {},\n  \"dispatch\": {{\n    \
         \"baseline_seconds\": {:.6},\n    \"decoded_seconds\": {:.6},\n    \
         \"dispatch_speedup\": {:.3},\n    \"programs\": [\n{}\n    ]\n  }},\n  \
         \"identical_csv\": true\n}}\n",
        if small { "small" } else { "paper" },
        suite.len(),
        impls.len(),
        n_configs,
        phases.events,
        inline_seconds,
        recorded_seconds,
        phases.machine_seconds,
        phases.replay_seconds,
        speedup,
        opts.predecode,
        base_total,
        dec_total,
        dispatch_speedup,
        dispatch_rows
            .iter()
            .map(|r| format!("    {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join("perf_summary.json"), json).expect("write perf_summary.json");
    eprintln!("wrote {}", dir.join("perf_summary.json").display());
}

/// `tamsim perf --mesh`: benchmark the mesh drivers — the cycle-by-cycle
/// lockstep loop against the event-horizon fast-forward — on the suite's
/// recorded mesh cache sweep, check the two drivers render byte-identical
/// mesh-cache CSVs, and leave `DIR/mesh_perf_summary.json` beside
/// `perf_summary.json`.
fn run_mesh_perf(
    suite: &[PaperBenchmark],
    small: bool,
    nodes: u32,
    threads: u32,
    dir: &Path,
    opts: LoweringOptions,
) {
    let progs: Vec<(&str, &Program)> = suite.iter().map(|b| (b.name, &b.program)).collect();
    let node_counts = [nodes];
    eprintln!(
        "mesh perf: {} programs x 2 impls x {{rr, local}} on {nodes} node(s)",
        progs.len()
    );
    warm_allocator();

    // Driver timings on plain (unrecorded) runs: the lockstep baseline —
    // PR 4's loop, every cycle simulated — against the event-horizon
    // fast-forward, which jumps pure-wait stretches in one step.
    let lockstep_seconds =
        metrics::mesh_machine_seconds_with_opts(&progs, &node_counts, false, opts);
    eprintln!("  lockstep driver     : {lockstep_seconds:.3} s");
    let fastforward_seconds =
        metrics::mesh_machine_seconds_with_opts(&progs, &node_counts, true, opts);
    eprintln!("  fast-forward driver : {fastforward_seconds:.3} s");

    // The parallel driver against its own one-thread baseline, both runs
    // timed without the outer run-level pool, so the ratio isolates what
    // the epoch-barrier fan-out buys (or costs, on a single-core host).
    // Measured on a wide mesh — at least 64 nodes — because that is the
    // regime the parallel driver exists for: each barrier round then
    // carries 64+ node-steps of work, instead of being dominated by the
    // round-trip itself as a 4-node mesh would be. On a one-core host
    // the measurement is pure barrier overhead masquerading as a
    // slowdown, so it is skipped and recorded as such.
    let par_nodes = nodes.max(64);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel = if host_cores > 1 {
        let serial_onethread_seconds =
            metrics::mesh_parallel_seconds_with_opts(&progs, &[par_nodes], 1, opts);
        let parallel_seconds =
            metrics::mesh_parallel_seconds_with_opts(&progs, &[par_nodes], threads, opts);
        let parallel_speedup = serial_onethread_seconds / parallel_seconds;
        eprintln!(
            "  parallel driver     : {parallel_seconds:.3} s ({threads} threads, {par_nodes} \
             nodes, {parallel_speedup:.2}x vs 1 thread, {host_cores} host core(s))"
        );
        Some((serial_onethread_seconds, parallel_seconds, parallel_speedup))
    } else {
        eprintln!("  parallel driver     : skipped (1 core)");
        None
    };

    // Recorded-replay: the mesh cache sweep's production path — record
    // per-node traces under each driver, replay into all 24 geometries.
    let (lock_runs, lock_perf) =
        metrics::mesh_cache_collect_with_opts(&progs, &node_counts, false, opts);
    let (fast_runs, fast_perf) =
        metrics::mesh_cache_collect_with_opts(&progs, &node_counts, true, opts);
    eprintln!(
        "  recorded-replay     : {:.3} s machine + {:.3} s replay ({} events)",
        fast_perf.machine_seconds, fast_perf.replay_seconds, fast_perf.events
    );

    // The fast-forward must be invisible in the results: identical CSVs
    // (cycles, per-node cache misses, ratios — everything golden-gated).
    let lock_csv = metrics::mesh_cache_table(&lock_runs).to_csv();
    let fast_csv = metrics::mesh_cache_table(&fast_runs).to_csv();
    assert_eq!(
        lock_csv, fast_csv,
        "fast-forward mesh cache figures diverged from lockstep"
    );
    assert_eq!(
        lock_perf.events, fast_perf.events,
        "fast-forward recorded a different number of access events"
    );
    emit(
        dir,
        "mesh_cache",
        "Mesh cache sweep: per-node private caches, MD/AM ratio at miss 24",
        &metrics::mesh_cache_table(&fast_runs),
    );

    let speedup = lockstep_seconds / fastforward_seconds;
    println!("## perf: mesh drivers, lockstep vs event-horizon fast-forward\n");
    println!("lockstep driver             : {lockstep_seconds:>8.3} s");
    println!("fast-forward driver         : {fastforward_seconds:>8.3} s");
    println!(
        "recorded machine phase      : {:>8.3} s",
        fast_perf.machine_seconds
    );
    println!(
        "cache replay phase          : {:>8.3} s",
        fast_perf.replay_seconds
    );
    println!("events recorded             : {:>8}", fast_perf.events);
    println!("speedup                     : {speedup:>8.2}x");
    match parallel {
        Some((_, parallel_seconds, parallel_speedup)) => {
            println!("parallel driver ({threads} threads) : {parallel_seconds:>8.3} s");
            println!("parallel speedup (vs 1 thr) : {parallel_speedup:>8.2}x");
        }
        None => println!("parallel driver             : skipped (1 core)"),
    }

    // The parallel block is numeric when measured, or the literal skip
    // marker on a one-core host — ci/bench_compare.sh treats the absent
    // numeric fields as "nothing to compare".
    let parallel_json = match parallel {
        Some((serial_onethread_seconds, parallel_seconds, parallel_speedup)) => format!(
            "\"serial_onethread_seconds\": {serial_onethread_seconds:.6},\n  \
             \"parallel_seconds\": {parallel_seconds:.6},\n  \
             \"parallel_threads\": {threads},\n  \"parallel_nodes\": {par_nodes},\n  \
             \"parallel_speedup\": {parallel_speedup:.3}"
        ),
        None => "\"parallel\": \"skipped (1 core)\"".to_string(),
    };
    let json = format!(
        "{{\n  \"suite\": \"{}\",\n  \"programs\": {},\n  \"implementations\": 2,\n  \
         \"nodes\": {},\n  \"events_recorded\": {},\n  \
         \"lockstep_seconds\": {:.6},\n  \"fastforward_seconds\": {:.6},\n  \
         \"recorded_seconds\": {:.6},\n  \"replay_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \
         {},\n  \"host_cores\": {},\n  \
         \"predecode\": {},\n  \"identical_csv\": true\n}}\n",
        if small { "small" } else { "paper" },
        progs.len(),
        nodes,
        fast_perf.events,
        lockstep_seconds,
        fastforward_seconds,
        fast_perf.machine_seconds,
        fast_perf.replay_seconds,
        speedup,
        parallel_json,
        host_cores,
        opts.predecode,
    );
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join("mesh_perf_summary.json"), json).expect("write mesh_perf_summary.json");
    eprintln!("wrote {}", dir.join("mesh_perf_summary.json").display());
}

/// `tamsim fuzz [--iters N] [--seed S] [--shrink] [--mutate] [--out DIR]`:
/// run a differential fuzz campaign. Every iteration generates a TAM
/// program from a derived seed, runs it under all three back-ends, and
/// checks results, invariants, message conservation, and the cache replay
/// engine. On failure, optionally shrink the first failing program and
/// write `reproducer.tam` + `manifest.json` under DIR; exit nonzero.
fn run_fuzz(args: &Args) {
    use tamsim_check::{
        failure_signature, fuzz_many, generate, reproducer_files, shrink, CheckConfig, Mutation,
    };
    let started = Instant::now();
    let cfg = CheckConfig {
        mutation: args.mutate.then_some(Mutation::FlipFirstAddToSub),
        mesh: args.mesh,
        dispatch: !args.no_predecode,
        ..CheckConfig::default()
    };
    eprintln!(
        "fuzz: {} iteration(s), master seed {:#x}{}{}",
        args.iters,
        args.seed,
        if args.mutate {
            " (mutation: first MD integer add flipped to sub)"
        } else {
            ""
        },
        if args.mesh {
            " (+ 1x1-mesh bit-identity per back-end, 4-node lockstep vs fast-forward)"
        } else {
            ""
        }
    );
    if args.no_predecode {
        eprintln!("fuzz: dispatch cross-check disabled (--no-predecode)");
    }
    let report = fuzz_many(args.seed, args.iters, &cfg);
    println!(
        "fuzz: {}/{} passed, {} failure(s), {} trace events cross-checked ({:.1?})",
        report.passed,
        report.iterations,
        report.failures.len(),
        report.trace_events,
        started.elapsed()
    );
    if report.is_clean() {
        return;
    }
    for f in &report.failures {
        println!("  seed {:#018x}: {}", f.seed, f.failure);
    }

    // Turn the first failure into a replayable reproducer bundle.
    let first = &report.failures[0];
    let mut program = generate(first.seed, &cfg.gen);
    let mut shrunk = None;
    if args.shrink {
        match failure_signature(&program, &cfg) {
            Some(kind) => {
                let before = program.static_ops();
                let r = shrink(&program, &cfg, kind);
                println!(
                    "shrunk seed {:#018x}: {} -> {} static ops ({} accepted edit(s), {} tried)",
                    first.seed,
                    before,
                    r.program.static_ops(),
                    r.accepted,
                    r.tried
                );
                program = r.program.clone();
                shrunk = Some(r);
            }
            None => eprintln!(
                "warning: seed {:#018x} did not reproduce deterministically; \
                 writing the unshrunk program",
                first.seed
            ),
        }
    }
    let (tam, manifest) = reproducer_files(&program, first.seed, &first.failure, shrunk.as_ref());
    fs::create_dir_all(&args.out).expect("create results dir");
    let tam_path = args.out.join("reproducer.tam");
    fs::write(&tam_path, tam).expect("write reproducer.tam");
    fs::write(args.out.join("manifest.json"), manifest).expect("write manifest.json");
    println!(
        "wrote {} and {} (replay with: tamsim run {})",
        tam_path.display(),
        args.out.join("manifest.json").display(),
        tam_path.display()
    );
    std::process::exit(1);
}

fn main() {
    let started = Instant::now();
    let args = parse_args();
    let Some(command) = args.command.clone() else {
        // Bare `tamsim` lists the commands rather than silently running
        // the full (slow) suite.
        print!("{}", help_text());
        return;
    };
    if !COMMANDS
        .iter()
        .any(|(name, _)| name.split(' ').next() == Some(command.as_str()))
    {
        eprintln!(
            "error: unknown command '{}'; expected one of: {}",
            command,
            COMMANDS
                .iter()
                .map(|(name, _)| name.split(' ').next().unwrap())
                .collect::<Vec<_>>()
                .join("|")
        );
        std::process::exit(2);
    }
    if command == "profile" {
        run_profile(&args);
        return;
    }
    if command == "fuzz" {
        run_fuzz(&args);
        return;
    }
    if command == "mesh" {
        run_mesh(&args);
        return;
    }
    if command == "serve" {
        run_serve(&args);
        return;
    }
    let suite: Vec<PaperBenchmark> = if args.small {
        tamsim_programs::small_suite()
    } else {
        tamsim_programs::paper_suite()
    };
    let suite_names = suite.iter().map(|b| b.name).collect::<Vec<_>>().join(",");
    let dir = args.out.clone();
    if command == "perf" {
        if args.mesh {
            // Two worker threads by default: the smallest parallel
            // configuration, meaningful even on modest CI hosts.
            let threads = args.mesh_threads().unwrap_or(2).max(2);
            run_mesh_perf(&suite, args.small, args.nodes, threads, &dir, args.opts());
        } else {
            run_perf(&suite, args.small, &dir, args.opts());
        }
        write_manifest(&dir, &suite_names, "MD,AM", Vec::new(), Vec::new(), started);
        return;
    }
    let needs_data = matches!(
        command.as_str(),
        "all" | "table2" | "figure3" | "figure4" | "figure5" | "figure6" | "accesses" | "blocks"
    );

    // One traced run per (program, implementation) feeds every figure:
    // the paper's 24-configuration sweep plus the block-size variants.
    let data: Option<SuiteData> = needs_data.then(|| {
        let mut geometries = paper_sweep();
        for &b in &PAPER_BLOCK_SWEEP {
            if b != 64 {
                geometries.push(CacheGeometry::new(8192, 4, b));
            }
        }
        let t0 = Instant::now();
        let data = SuiteData::collect(
            suite.clone(),
            &[Implementation::Md, Implementation::Am],
            geometries,
        );
        eprintln!(
            "collected {} traced runs in {:.1?}",
            data.names.len() * 2,
            t0.elapsed()
        );
        data
    });

    let cmd = command.as_str();
    let all = cmd == "all";

    if all || cmd == "table1" {
        let text = metrics::table1();
        println!("## Table 1: TAM constructs on the J-Machine\n\n{text}");
        write_out(&dir, "table1", &text, None);
    }
    if all || cmd == "table2" {
        emit(
            &dir,
            "table2",
            "Table 2: granularity and MD/AM cycle ratios (8K 4-way, 64B blocks)",
            &metrics::table2(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "figure1" {
        let text = metrics::figure1();
        println!("## Figure 1: scheduling order (child codeblock)\n\n{text}");
        write_out(&dir, "figure1", &text, None);
    }
    if all || cmd == "figure2" {
        emit(
            &dir,
            "figure2",
            "Figure 2 / §2.4: unenabled vs enabled AM",
            &metrics::figure2(&suite),
        );
    }
    if all || cmd == "figure3" {
        emit_series(
            &dir,
            "figure3",
            "Figure 3: geomean MD/AM cycle ratio vs cache size",
            metrics::figure3(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "figure4" {
        emit_series(
            &dir,
            "figure4",
            "Figure 4: per-program MD/AM ratio, 4-way set-associative",
            metrics::figure_per_program(data.as_ref().unwrap(), 4),
        );
    }
    if all || cmd == "figure5" {
        emit_series(
            &dir,
            "figure5",
            "Figure 5: per-program MD/AM ratio, direct-mapped",
            metrics::figure_per_program(data.as_ref().unwrap(), 1),
        );
    }
    if all || cmd == "figure6" {
        emit(
            &dir,
            "figure6",
            "Figure 6: geomean excluding SS, direct-mapped",
            &metrics::figure6(data.as_ref().unwrap()),
        );
    }
    if all || cmd == "accesses" {
        let data = data.as_ref().unwrap();
        emit(
            &dir,
            "accesses",
            "§3.1: MD accesses as a fraction of AM",
            &metrics::accesses(data),
        );
        emit(
            &dir,
            "regions_md",
            "§3.1 detail: MD accesses by region",
            &metrics::region_breakdown(data, Implementation::Md),
        );
        emit(
            &dir,
            "regions_am",
            "§3.1 detail: AM accesses by region",
            &metrics::region_breakdown(data, Implementation::Am),
        );
    }
    if cmd == "run" {
        let path = args
            .extra
            .first()
            .cloned()
            .expect("usage: tamsim run FILE.tam");
        let source = fs::read_to_string(&path).expect("read program file");
        let program = tamsim_tam::parse_program(&source).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!(
            "{}: {} codeblocks, {} static ops",
            program.name,
            program.codeblocks.len(),
            program.static_ops()
        );
        for impl_ in [
            Implementation::Am,
            Implementation::AmEnabled,
            Implementation::Md,
        ] {
            let out = tamsim_core::Experiment::new(impl_)
                .with_opts(args.opts())
                .run(&program);
            let result: Vec<String> = out.result.iter().map(|w| w.as_i64().to_string()).collect();
            println!(
                "  {:5}: result [{}]  {} instructions, tpq {:.1}",
                impl_.label(),
                result.join(", "),
                out.instructions,
                out.granularity.tpq()
            );
        }
        return;
    }
    if cmd == "disasm" {
        // A small program keeps the listing readable; the point is to
        // inspect how the two lowerings differ.
        use tamsim_mdp::disasm_region;
        let program = tamsim_programs::fib(5);
        for impl_ in [Implementation::Am, Implementation::Md] {
            let linked = tamsim_core::Experiment::new(impl_).link(&program);
            let map = linked.cfg.map;
            println!("==== {} system code ====", impl_.label());
            println!(
                "{}",
                disasm_region(&linked.code, map.system_code_base, linked.code.sys_len())
            );
            println!("==== {} user code ====", impl_.label());
            println!(
                "{}",
                disasm_region(&linked.code, map.user_code_base, linked.code.user_len())
            );
        }
        return;
    }
    if all || cmd == "blocks" {
        emit(
            &dir,
            "blocks",
            "§3.3: block-size sweep (8K 4-way, miss 24; normalized to 64B)",
            &metrics::block_sweep(data.as_ref().unwrap(), &PAPER_BLOCK_SWEEP),
        );
    }
    if all {
        // Mesh node-count sweep: fib plus two paper benchmarks across
        // 1/2/4/8 nodes. Deterministic, so the CSV is golden-gated
        // (tests/golden/mesh_nodes.csv).
        let fib = tamsim_programs::fib(if args.small { 8 } else { 10 });
        let mut progs: Vec<(&str, &Program)> = vec![("fib", &fib)];
        for b in &suite {
            if b.name == "MMT" || b.name == "QS" {
                progs.push((b.name, &b.program));
            }
        }
        emit(
            &dir,
            "mesh_nodes",
            "Mesh node sweep: per-implementation cycles and MD/AM ratio vs node count",
            &metrics::mesh_sweep(&progs, &metrics::MESH_NODE_SWEEP),
        );
        // Mesh cache sweep: the same programs recorded once per (impl,
        // nodes, policy) and replayed into the paper's 24 geometries with
        // per-node private caches (tests/golden/mesh_cache.csv).
        emit(
            &dir,
            "mesh_cache",
            "Mesh cache sweep: per-node private caches, MD/AM ratio at miss 24",
            &metrics::mesh_cache_sweep(&progs, &metrics::MESH_CACHE_NODE_SWEEP),
        );
        // Per-link telemetry of one pinned configuration (fib under MD on
        // 4 nodes, default fabric). The always-on counters are part of
        // the bit-deterministic run state, so the CSV is golden-gated
        // (tests/golden/mesh_links.csv).
        let links_run = metrics::mesh_run(&fib, Implementation::Md, 4);
        emit(
            &dir,
            "mesh_links",
            "Mesh link telemetry: fib under MD on 4 nodes (golden-pinned)",
            &metrics::mesh_links_table(&links_run),
        );
        // Node-count scaling sweep, 1 → 256 nodes under the parallel
        // driver: cycles, traffic, and the per-worker step split are all
        // bit-deterministic (tests/golden/mesh_scaling.csv); wall-clock
        // speedup lives in mesh_perf_summary.json instead. Always the
        // small program variants: the sweep studies topology (how work
        // and traffic spread as the mesh widens), where program size
        // only multiplies wall time — 256 nodes x 4 emulated threads of
        // paper-size MMT takes minutes on a small host.
        let scale_fib = tamsim_programs::fib(8);
        let scale_suite = tamsim_programs::small_suite();
        let mut scale_progs: Vec<(&str, &Program)> = vec![("fib", &scale_fib)];
        for b in &scale_suite {
            if b.name == "MMT" || b.name == "QS" {
                scale_progs.push((b.name, &b.program));
            }
        }
        emit(
            &dir,
            "mesh_scaling",
            &format!(
                "Mesh scaling sweep: MD cycles, traffic, and worker balance to 256 nodes \
                 ({} threads, small workloads)",
                metrics::MESH_SCALING_THREADS
            ),
            &metrics::mesh_scaling(&scale_progs, &metrics::MESH_SCALING_SWEEP),
        );
        // Open-loop serve load sweep: fib(8) requests on a 2x2 mesh at
        // three offered loads under every back-end — one below saturation
        // (latency ≈ service time), one near it, one far past it
        // (queueing-dominated tail). Completion records are bit-identical
        // across drivers and thread counts, so the CSV is golden-gated
        // (tests/golden/serve_latency.csv).
        {
            use tamsim_net::{
                MeshExperiment, OriginDist, PlacementPolicy, ServeConfig, ServeRunResult,
            };
            let serve_prog = tamsim_programs::fib(8);
            let mut runs = Vec::new();
            for impl_ in [
                Implementation::Am,
                Implementation::AmEnabled,
                Implementation::Md,
            ] {
                for rate_ppm in [100u64, 400, 4_000] {
                    runs.push(
                        MeshExperiment::new(impl_, 4)
                            .serve(&serve_prog, &ServeConfig::new(rate_ppm, 24, 0xC0FFEE)),
                    );
                }
            }
            // The skewed-load study: every request arrives at corner
            // node 0 of a 4x4 mesh near saturation, under each
            // placement policy per back-end. Static placement leaves
            // the corner's backlog wherever birth placement put it;
            // the steal rows show dynamic migration cutting the tail
            // and raising achieved throughput (the AM steal row's p99
            // vs its rr/local rows is the tentpole measurement).
            for impl_ in [
                Implementation::Am,
                Implementation::AmEnabled,
                Implementation::Md,
            ] {
                for policy in PlacementPolicy::ALL {
                    let cfg = ServeConfig {
                        origins: OriginDist::Corner,
                        ..ServeConfig::new(20_000, 64, 7)
                    };
                    runs.push(
                        MeshExperiment::new(impl_, 16)
                            .with_placement(policy)
                            .serve(&serve_prog, &cfg),
                    );
                }
            }
            let refs: Vec<&ServeRunResult> = runs.iter().collect();
            emit(
                &dir,
                "serve_latency",
                "Open-loop serve sweep: offered load vs achieved throughput and tail \
                 latency (fib(8) requests, 4 nodes; corner rows: skewed arrivals on \
                 a 16-node mesh under each placement policy)",
                &metrics::serve_latency_table(&refs),
            );
        }
    }
    // Everything that reaches here wrote artifacts under `dir`; record
    // what produced them.
    write_manifest(&dir, &suite_names, "MD,AM", Vec::new(), Vec::new(), started);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every command the dispatcher accepts must be listed in `--help`,
    /// and the listing's first token is what `main` matches on.
    #[test]
    fn help_lists_every_command_once() {
        let help = help_text();
        for (name, desc) in COMMANDS {
            assert!(help.contains(name), "help is missing command '{name}'");
            assert!(help.contains(desc), "help is missing the '{name}' blurb");
        }
        let serve_rows = COMMANDS
            .iter()
            .filter(|(name, _)| name.split(' ').next() == Some("serve"))
            .count();
        assert_eq!(serve_rows, 1, "serve must be listed exactly once");
    }

    /// `tamsim serve --help` coverage: the command row and each of its
    /// flags (with defaults) appear in the help text.
    #[test]
    fn help_covers_the_serve_command_and_flags() {
        let help = help_text();
        assert!(help.contains("serve [PROG]"));
        assert!(help.contains("open-loop request serving"));
        assert!(help.contains("--rate R"));
        assert!(help.contains("requests per 1000 cycles (default: 20)"));
        assert!(help.contains("--requests N"));
        assert!(help.contains("total requests to inject (default: 32)"));
        assert!(help.contains("--arrivals A"));
        assert!(help.contains("poisson | fixed (default: poisson)"));
        // Shared flags must mention serve where it participates.
        assert!(help.contains("fuzz, serve: master seed"));
        assert!(help.contains("mesh, serve: frame placement"));
        assert!(help.contains("mesh, serve, perf --mesh: node count"));
        assert!(help.contains("mesh, serve, perf --mesh: host worker threads"));
    }
}
