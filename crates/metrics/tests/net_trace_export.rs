//! Mesh observability export gate: the traced 2×2 run's `mesh_trace.json`
//! must validate as JSON, must causally link send spans to inlet spans
//! through flow events, and — the run being bit-deterministic — must
//! byte-match a pinned golden. The mesh `profile.json` is validated the
//! same way.
//!
//! Regenerate the golden after an intentional exporter change with
//! `TAMSIM_BLESS=1 cargo test -p tamsim-metrics --test net_trace_export`.

use std::fs;
use std::path::Path;

use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NetTraceMode};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/mesh_trace_2x2.json"
);

fn traced_2x2_run() -> MeshRunResult {
    MeshExperiment::new(Implementation::Md, 4)
        .traced(NetTraceMode::Full)
        .run(&tamsim_programs::fib(5))
}

fn render_trace(r: &MeshRunResult) -> String {
    tamsim_obs::mesh_trace_json_traced(
        "fib",
        r.implementation.label(),
        r.cycles,
        &tamsim_metrics::node_tracks(r),
        &tamsim_metrics::net_trace_view(r),
    )
}

#[test]
fn mesh_trace_validates_and_links_sends_to_inlets() {
    let r = traced_2x2_run();
    let trace = render_trace(&r);
    tamsim_obs::json::validate(&trace).expect("mesh_trace.json must parse");

    // Flow events: at least one send span linked to its inlet span, and
    // every flow start has a matching bound flow end.
    let starts = trace.matches("\"ph\":\"s\"").count();
    let ends = trace.matches("\"ph\":\"f\",\"bp\":\"e\"").count();
    assert!(starts > 0, "no flow events in a 4-node traced run");
    assert_eq!(starts, ends, "unbalanced flow arrows");
    let delivered = r
        .net_trace
        .as_ref()
        .unwrap()
        .records
        .iter()
        .filter(|m| m.deliver_cycle.is_some())
        .count();
    assert_eq!(starts, delivered, "one flow arrow per delivered message");

    // Send and inlet slices live on the per-node network tracks.
    for n in 0..4 {
        assert!(
            trace.contains(&format!("node {n} net")),
            "node {n} has no network track"
        );
    }
}

#[test]
fn mesh_profile_validates_and_carries_the_net_object() {
    let r = traced_2x2_run();
    let profile = tamsim_metrics::mesh_profile(&r, "fib");
    tamsim_obs::json::validate(&profile).expect("profile.json must parse");
    assert!(profile.contains("\"schema\":\"tamsim-mesh-profile/1\""));
    assert!(profile.contains("\"net\":{"));
    assert!(profile.contains("\"deliver_stalls_by_node\":["));
    assert!(profile.contains("\"kind\":\"deliver\""));
    assert!(profile.contains("\"kind\":\"dispatch\""));
    assert!(profile.contains("\"link\":\"inject\""));
}

#[test]
fn mesh_trace_matches_the_pinned_golden() {
    let trace = render_trace(&traced_2x2_run());
    if std::env::var_os("TAMSIM_BLESS").is_some() {
        fs::write(GOLDEN, &trace).expect("write golden");
    }
    let expect = fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with TAMSIM_BLESS=1",
            Path::new(GOLDEN).display()
        )
    });
    assert_eq!(
        trace, expect,
        "mesh_trace.json drifted from tests/golden/mesh_trace_2x2.json; \
         if intentional, regenerate with TAMSIM_BLESS=1"
    );
}
