//! The non-cache experiments: Figure 1's scheduling-order contrast and
//! Figure 2 / §2.4's enabled-vs-unenabled AM comparison.

use crate::render::{r1, Table};
use tamsim_core::{Experiment, Implementation};
use tamsim_mdp::{Hooks, Mark, Priority};
use tamsim_programs::PaperBenchmark;
use tamsim_tam::ids::regs::*;
use tamsim_tam::ops::*;
use tamsim_tam::{CodeblockBuilder, Program, ProgramBuilder, Value};

/// One scheduling event observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// Inlet `inlet` of codeblock `cb` ran.
    Inlet {
        /// Codeblock id.
        cb: u16,
        /// Inlet id.
        inlet: u16,
    },
    /// Thread `thread` of codeblock `cb` ran.
    Thread {
        /// Codeblock id.
        cb: u16,
        /// Thread id.
        thread: u16,
    },
}

struct ScheduleHooks {
    events: Vec<SchedEvent>,
    only_cb: u16,
}

impl Hooks for ScheduleHooks {
    fn access(&mut self, _a: tamsim_trace::Access) {}

    fn mark(&mut self, mark: Mark, _frame: u32, _pri: Priority) {
        match mark {
            Mark::InletStart { codeblock, inlet } if codeblock == self.only_cb => {
                self.events.push(SchedEvent::Inlet {
                    cb: codeblock,
                    inlet,
                });
            }
            Mark::ThreadStart { codeblock, thread } if codeblock == self.only_cb => {
                self.events.push(SchedEvent::Thread {
                    cb: codeblock,
                    thread,
                });
            }
            _ => {}
        }
    }
}

/// Capture the inlet/thread execution order of codeblock `cb` under
/// `impl_`.
pub fn capture_schedule(program: &Program, impl_: Implementation, cb: u16) -> Vec<SchedEvent> {
    let linked = Experiment::new(impl_).link(program);
    let mut hooks = ScheduleHooks {
        events: Vec::new(),
        only_cb: cb,
    };
    linked.run(&mut hooks).expect("schedule run failed");
    hooks.events
}

/// The Figure 1 demonstration program: `main` invokes `child(x, y)`, so
/// two argument messages for the same frame "arrive at about the same
/// time". Inlet 0 posts thread 0; inlet 1 posts thread 1.
pub fn figure1_program() -> Program {
    let mut pb = ProgramBuilder::new("figure1");
    let main = pb.declare("main");
    let child = pb.declare("child");

    let mut cb = CodeblockBuilder::new("child");
    let sa = cb.slot();
    let sb = cb.slot();
    let t_a = cb.thread();
    let t_b = cb.thread();
    let t_fin = cb.thread();
    cb.add_inlet(vec![ldmsg(R0, 0), st(sa, R0), post(t_a)]);
    cb.add_inlet(vec![ldmsg(R0, 0), st(sb, R0), post(t_b)]);
    cb.def_thread(
        t_a,
        1,
        vec![
            ld(R0, sa),
            alu(AluOp::Add, R0, R0, imm(1)),
            st(sa, R0),
            fork(t_fin),
        ],
    );
    cb.def_thread(
        t_b,
        1,
        vec![
            ld(R0, sb),
            alu(AluOp::Add, R0, R0, imm(2)),
            st(sb, R0),
            fork(t_fin),
        ],
    );
    cb.def_thread(
        t_fin,
        2,
        vec![
            ld(R0, sa),
            ld(R1, sb),
            alu(AluOp::Add, R0, R0, reg(R1)),
            ret(vec![R0]),
        ],
    );
    pb.define(child, cb.finish());

    let mut cb = CodeblockBuilder::new("main");
    let sr = cb.slot();
    let i_arg = cb.inlet();
    let i_rep = cb.inlet();
    let t_go = cb.thread();
    let t_done = cb.thread();
    cb.def_inlet(i_arg, vec![post(t_go)]);
    cb.def_inlet(i_rep, vec![ldmsg(R0, 0), st(sr, R0), post(t_done)]);
    cb.def_thread(
        t_go,
        1,
        vec![movi(R0, 10), movi(R1, 20), call(child, vec![R0, R1], i_rep)],
    );
    cb.def_thread(t_done, 1, vec![ld(R0, sr), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

use tamsim_tam::AluOp;

/// Figure 1: render the execution-order contrast for the two
/// implementations ("under the AM implementation, one [inlet] will run,
/// then the other, followed by any threads they fork. Under the MD
/// implementation, the first inlet will run, followed by any threads that
/// it posts, with the second inlet running after").
pub fn figure1() -> String {
    let program = figure1_program();
    let mut out = String::new();
    for impl_ in [Implementation::Am, Implementation::Md] {
        let events = capture_schedule(&program, impl_, 1);
        out.push_str(&format!("{}: ", impl_.label()));
        let rendered: Vec<String> = events
            .iter()
            .map(|e| match e {
                SchedEvent::Inlet { inlet, .. } => format!("inlet{inlet}"),
                SchedEvent::Thread { thread, .. } => format!("thread{thread}"),
            })
            .collect();
        out.push_str(&rendered.join(" -> "));
        out.push('\n');
    }
    out
}

/// Figure 2 / §2.4: granularity of the unenabled vs enabled AM variants.
/// On a uniprocessor the enabled implementation services local
/// I-structure fetches inside the quantum, "resulting in greater quantum
/// size".
pub fn figure2(suite: &[PaperBenchmark]) -> Table {
    let mut t = Table::new(&[
        "Program",
        "TPQ AM",
        "TPQ AM-en",
        "IPQ AM",
        "IPQ AM-en",
        "instr AM",
        "instr AM-en",
    ]);
    for bench in suite {
        let am = Experiment::new(Implementation::Am).run(&bench.program);
        let en = Experiment::new(Implementation::AmEnabled).run(&bench.program);
        t.row(vec![
            bench.name.to_string(),
            r1(am.granularity.tpq()),
            r1(en.granularity.tpq()),
            format!("{:.0}", am.granularity.ipq()),
            format!("{:.0}", en.granularity.ipq()),
            am.instructions.to_string(),
            en.instructions.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_orders_differ_as_in_the_paper() {
        let program = figure1_program();
        let am = capture_schedule(&program, Implementation::Am, 1);
        let md = capture_schedule(&program, Implementation::Md, 1);
        use SchedEvent::*;
        // AM: both inlets (high priority) run before any thread; the
        // enabled threads then pop off the frame's ready list in LIFO
        // order.
        assert_eq!(
            am,
            vec![
                Inlet { cb: 1, inlet: 0 },
                Inlet { cb: 1, inlet: 1 },
                Thread { cb: 1, thread: 1 },
                Thread { cb: 1, thread: 0 },
                Thread { cb: 1, thread: 2 },
            ]
        );
        // MD: the first inlet's thread runs before the second inlet.
        assert_eq!(
            md,
            vec![
                Inlet { cb: 1, inlet: 0 },
                Thread { cb: 1, thread: 0 },
                Inlet { cb: 1, inlet: 1 },
                Thread { cb: 1, thread: 1 },
                Thread { cb: 1, thread: 2 },
            ]
        );
    }

    #[test]
    fn figure1_text_mentions_both_implementations() {
        let s = figure1();
        assert!(s.contains("AM:"));
        assert!(s.contains("MD:"));
    }

    #[test]
    fn enabled_variant_has_no_smaller_quanta() {
        let suite = vec![tamsim_programs::PaperBenchmark {
            name: "MMT",
            program: tamsim_programs::mmt(10),
        }];
        let t = figure2(&suite).to_csv();
        let row: Vec<&str> = t.lines().nth(1).unwrap().split(',').collect();
        let tpq_am: f64 = row[1].parse().unwrap();
        let tpq_en: f64 = row[2].parse().unwrap();
        assert!(
            tpq_en >= tpq_am,
            "enabled AM should have at least the quanta of unenabled: {tpq_en} vs {tpq_am}"
        );
    }
}
