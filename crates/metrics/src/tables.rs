//! Table 1, Table 2, and the Section 3.1 access-count comparison.

use crate::render::{r1, r3, Table};
use crate::suite::SuiteData;
use tamsim_cache::{table2_geometry, CycleModel, PAPER_MISS_COSTS};
use tamsim_core::Implementation;
use tamsim_trace::AccessKind;

/// Table 1: the mapping of TAM constructs to MDP mechanisms, as
/// implemented by the two lowerings in `tamsim-core`.
pub fn table1() -> String {
    let mut t = Table::new(&["TAM mechanism", "AM implementation", "MD implementation"]);
    let rows: [[&str; 3]; 6] = [
        [
            "inlet",
            "high priority message handler",
            "low priority message handler",
        ],
        [
            "post from inlet",
            "place thread in frame (post library)",
            "jump directly to thread",
        ],
        ["activation of frame", "low priority swap routine", "n/a"],
        ["threads", "low priority code", "low priority code"],
        [
            "fork from thread",
            "jump or push onto in-frame LCV",
            "jump or push onto global LCV",
        ],
        [
            "system routines",
            "high priority message handlers",
            "high priority message handlers",
        ],
    ];
    for r in rows {
        t.row(r.iter().map(|s| s.to_string()).collect());
    }
    t.to_text()
}

/// Table 2: TPQ / IPT / IPQ per program for MD and AM, plus the MD/AM
/// total-cycle ratios in 8192-byte 4-way set-associative caches at miss
/// costs of 12, 24, and 48 cycles.
pub fn table2(data: &SuiteData) -> Table {
    let geom = table2_geometry();
    let mut t = Table::new(&[
        "Program", "TPQ MD", "TPQ AM", "IPT MD", "IPT AM", "IPQ MD", "IPQ AM", "MD/AM@12",
        "MD/AM@24", "MD/AM@48",
    ]);
    for name in data.name_refs() {
        let md = &data.get(name, Implementation::Md).run.granularity;
        let am = &data.get(name, Implementation::Am).run.granularity;
        let mut row = vec![
            name.to_string(),
            r1(md.tpq()),
            r1(am.tpq()),
            r1(md.ipt()),
            r1(am.ipt()),
            format!("{:.0}", md.ipq()),
            format!("{:.0}", am.ipq()),
        ];
        for cost in PAPER_MISS_COSTS {
            row.push(r3(data.ratio(name, geom, CycleModel::paper(cost))));
        }
        t.row(row);
    }
    t
}

/// Section 3.1: MD as a fraction of AM for reads, writes, and instruction
/// fetches, per program and averaged (the paper: "on average, the MD
/// implementation yields 86% of the reads, 87% of the writes, and 77% of
/// the fetches produced by the AM implementation").
pub fn accesses(data: &SuiteData) -> Table {
    let mut t = Table::new(&["Program", "reads MD/AM", "writes MD/AM", "fetches MD/AM"]);
    let mut sums = [0.0f64; 3];
    let names = data.name_refs();
    for name in &names {
        let md = &data.get(name, Implementation::Md).run.counts;
        let am = &data.get(name, Implementation::Am).run.counts;
        let ratios = [
            md.ratio_to(am, AccessKind::Read).unwrap(),
            md.ratio_to(am, AccessKind::Write).unwrap(),
            md.ratio_to(am, AccessKind::Fetch).unwrap(),
        ];
        for (s, r) in sums.iter_mut().zip(ratios) {
            *s += r;
        }
        t.row(vec![
            name.to_string(),
            r3(ratios[0]),
            r3(ratios[1]),
            r3(ratios[2]),
        ]);
    }
    let n = names.len() as f64;
    t.row(vec![
        "average".to_string(),
        r3(sums[0] / n),
        r3(sums[1] / n),
        r3(sums[2] / n),
    ]);
    t
}

/// Breakdown of one implementation's accesses by region (supporting
/// detail for §3.1's system/user division).
pub fn region_breakdown(data: &SuiteData, impl_: Implementation) -> Table {
    use tamsim_trace::Region;
    let mut t = Table::new(&[
        "Program",
        "sys code",
        "user code",
        "sys data",
        "user data",
        "total",
    ]);
    for name in data.name_refs() {
        let c = &data.get(name, impl_).run.counts;
        t.row(vec![
            name.to_string(),
            c.region_total(Region::SystemCode).to_string(),
            c.region_total(Region::UserCode).to_string(),
            c.region_total(Region::SystemData).to_string(),
            c.region_total(Region::UserData).to_string(),
            c.total().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_cache::table2_geometry;
    use tamsim_programs::PaperBenchmark;

    fn tiny_data() -> SuiteData {
        SuiteData::collect(
            vec![PaperBenchmark {
                name: "FIB",
                program: tamsim_programs::fib(7),
            }],
            &[Implementation::Md, Implementation::Am],
            vec![table2_geometry()],
        )
    }

    #[test]
    fn table1_lists_all_mechanisms() {
        let t = table1();
        assert!(t.contains("post from inlet"));
        assert!(t.contains("jump directly to thread"));
    }

    #[test]
    fn table2_has_a_row_per_program() {
        let data = tiny_data();
        let t = table2(&data).to_text();
        assert!(t.contains("FIB"));
        assert!(t.contains("MD/AM@48"));
    }

    #[test]
    fn access_ratios_are_below_one_for_fib() {
        let data = tiny_data();
        let t = accesses(&data).to_csv();
        let avg = t.lines().last().unwrap();
        let cells: Vec<&str> = avg.split(',').collect();
        for c in &cells[1..] {
            let v: f64 = c.parse().unwrap();
            assert!(v < 1.0, "MD should access less than AM, got {v}");
        }
    }

    #[test]
    fn region_breakdown_totals_match() {
        let data = tiny_data();
        let t = region_breakdown(&data, Implementation::Md).to_csv();
        let row = t.lines().nth(1).unwrap();
        let cells: Vec<u64> = row.split(',').skip(1).map(|c| c.parse().unwrap()).collect();
        assert_eq!(cells[..4].iter().sum::<u64>(), cells[4]);
    }
}
