//! The mesh node-count sweep: how each implementation's cycle count — and
//! the MD/AM gap the paper measures on one node — evolves as the same
//! computation spreads across a dimension-order-routed 2D mesh.
//!
//! [`mesh_sweep`] is the data behind `tests/golden/mesh_nodes.csv`: the
//! mesh driver is bit-deterministic (fixed node iteration order, no
//! wall-clock anywhere), so the golden gate byte-compares its CSV exactly
//! like the single-node figures.

use std::time::Instant;

use tamsim_cache::{paper_sweep, CacheBank, CacheGeometry, CacheSummary, CycleModel};
use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NodeState, PlacementPolicy};
use tamsim_tam::Program;

use crate::render::{r3, Table};

/// Node counts the golden sweep covers (1 = the single-node anchor).
pub const MESH_NODE_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// The three back-ends, in the sweep's column order.
const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

/// Run `program` on an `nodes`-node mesh under one back-end with the
/// default fabric timing.
pub fn mesh_run(program: &Program, impl_: Implementation, nodes: u32) -> MeshRunResult {
    MeshExperiment::new(impl_, nodes).run(program)
}

/// Load imbalance of a finished run: max over mean per-node busy (Run)
/// cycles. `1.0` is a perfectly balanced mesh; `nodes` is one node doing
/// everything — the figure the work-stealing policy is judged on.
pub fn load_imbalance(r: &MeshRunResult) -> f64 {
    let busy: Vec<u64> = r
        .activity
        .iter()
        .map(|t| t.cycles_in(NodeState::Run))
        .collect();
    let total: u64 = busy.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *busy.iter().max().expect("at least one node");
    max as f64 * busy.len() as f64 / total as f64
}

/// The (nodes, policy) row configurations of the node sweep: every
/// placement policy per multi-node count, `rr` alone at one node
/// (placement is a no-op there).
fn mesh_policy_configs(node_counts: &[u32]) -> Vec<(u32, PlacementPolicy)> {
    node_counts
        .iter()
        .flat_map(|&n| {
            if n == 1 {
                vec![(1, PlacementPolicy::RoundRobin)]
            } else {
                PlacementPolicy::ALL.iter().map(|&p| (n, p)).collect()
            }
        })
        .collect()
}

/// One row per (program, node count, placement policy): cycles under
/// each back-end, the MD/AM cycle ratio, the MD run's network traffic,
/// and the AM run's load imbalance and steal count (the dynamic-
/// balancing observables; both static policies report zero steals).
/// Runs fan out across the worker pool; row order is fixed regardless
/// of worker count.
pub fn mesh_sweep(programs: &[(&str, &Program)], node_counts: &[u32]) -> Table {
    let configs = mesh_policy_configs(node_counts);
    let jobs: Vec<(usize, u32, PlacementPolicy, Implementation)> = programs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            configs.iter().flat_map(move |&(n, policy)| {
                IMPLS.iter().map(move |&impl_| (pi, n, policy, impl_))
            })
        })
        .collect();
    let runs = tamsim_trace::par_map(jobs, |(pi, n, policy, impl_)| {
        MeshExperiment::new(impl_, n)
            .with_placement(policy)
            .run(programs[pi].1)
    });

    let mut t = Table::new(&[
        "program",
        "nodes",
        "policy",
        "am_cycles",
        "am_en_cycles",
        "md_cycles",
        "md_am_ratio",
        "md_msgs",
        "md_hops",
        "am_imbalance",
        "am_steals",
    ]);
    let mut it = runs.into_iter();
    for (name, _) in programs {
        for &(n, policy) in &configs {
            let (am, am_en, md) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            t.row(vec![
                name.to_string(),
                n.to_string(),
                policy.label().to_string(),
                am.cycles.to_string(),
                am_en.cycles.to_string(),
                md.cycles.to_string(),
                r3(md.cycles as f64 / am.cycles as f64),
                md.net.delivered_msgs.to_string(),
                md.net.hop_traversals.to_string(),
                r3(load_imbalance(&am)),
                am.steals.iter().sum::<u64>().to_string(),
            ]);
        }
    }
    t
}

/// Node counts the golden scaling sweep covers: 1 → 256, the full reach
/// of the widened 8-bit node tag.
pub const MESH_SCALING_SWEEP: [u32; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Worker-thread count the golden scaling sweep pins its per-thread
/// columns to. The columns depend on the thread count (chunking) but not
/// on the host — the parallel driver is bit-deterministic — so the CSV
/// stays golden-gateable on any machine.
pub const MESH_SCALING_THREADS: u32 = 4;

/// The 1 → 256-node scaling sweep behind `tests/golden/mesh_scaling.csv`:
/// one row per (program, node count) under MD, run by the parallel driver
/// at [`MESH_SCALING_THREADS`] workers. Cycles, traffic, and the
/// per-worker step split are all bit-deterministic; the CSV carries no
/// wall-clock (timing lives in `mesh_perf_summary.json`).
///
/// `balance` is max/min instructions across workers — the load-imbalance
/// figure that bounds the parallel driver's achievable speedup on this
/// workload.
pub fn mesh_scaling(programs: &[(&str, &Program)], node_counts: &[u32]) -> Table {
    let jobs: Vec<(usize, u32)> = programs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| node_counts.iter().map(move |&n| (pi, n)))
        .collect();
    let runs = tamsim_trace::par_map(jobs, |(pi, n)| {
        MeshExperiment::new(Implementation::Md, n)
            .with_threads(MESH_SCALING_THREADS)
            .run(programs[pi].1)
    });

    let mut t = Table::new(&[
        "program",
        "nodes",
        "mesh",
        "md_cycles",
        "md_msgs",
        "md_hops",
        "workers",
        "min_worker_steps",
        "max_worker_steps",
        "balance",
    ]);
    let mut it = runs.into_iter();
    for (name, _) in programs {
        for &n in node_counts {
            let r = it.next().unwrap();
            // Serial runs (1 node or 1 thread) report no per-thread split;
            // treat them as one worker owning everything.
            let (workers, min_steps, max_steps) = match &r.thread_stats {
                Some(ts) => (
                    ts.len() as u64,
                    ts.iter().map(|t| t.steps).min().unwrap_or(0),
                    ts.iter().map(|t| t.steps).max().unwrap_or(0),
                ),
                None => (1, r.instructions, r.instructions),
            };
            t.row(vec![
                name.to_string(),
                n.to_string(),
                format!("{}x{}", r.width, r.height),
                r.cycles.to_string(),
                r.net.delivered_msgs.to_string(),
                r.net.hop_traversals.to_string(),
                workers.to_string(),
                min_steps.to_string(),
                max_steps.to_string(),
                r3(if min_steps > 0 {
                    max_steps as f64 / min_steps as f64
                } else {
                    0.0
                }),
            ]);
        }
    }
    t
}

/// Node counts the golden mesh cache sweep covers (1 anchors the
/// multi-node ratios against the single-node Figure 3 data).
pub const MESH_CACHE_NODE_SWEEP: [u32; 2] = [1, 4];

/// The paper's headline miss penalty, reused for the mesh ratio columns.
const MESH_MISS_PENALTY: u64 = 24;

/// The two back-ends the cache figures compare (as in Figure 3).
const CACHE_IMPLS: [Implementation; 2] = [Implementation::Am, Implementation::Md];

/// One recorded mesh machine-run scored against the full cache sweep.
#[derive(Debug, Clone)]
pub struct MeshCacheRun {
    /// Benchmark name.
    pub name: String,
    /// Which back-end ran.
    pub implementation: Implementation,
    /// Node count.
    pub nodes: u32,
    /// Frame-placement policy.
    pub policy: PlacementPolicy,
    /// Global mesh cycles (the base the miss penalty is added to).
    pub cycles: u64,
    /// Per-geometry outcome, summed over each node's private I/D pair.
    pub caches: Vec<(CacheGeometry, CacheSummary)>,
    /// Access events recorded across all nodes.
    pub events: u64,
}

impl MeshCacheRun {
    /// Total cycles at `geometry`: global mesh cycles plus the paper's
    /// uniform miss penalty over every node's private-cache misses.
    pub fn total_cycles(&self, geometry: CacheGeometry, model: CycleModel) -> u64 {
        let (_, summary) = self
            .caches
            .iter()
            .find(|(g, _)| *g == geometry)
            .unwrap_or_else(|| panic!("geometry {geometry:?} not in sweep"));
        model.total_cycles(self.cycles, summary)
    }
}

/// Wall-clock breakdown of a [`mesh_cache_collect`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeshCachePerf {
    /// Seconds simulating mesh machines (recording per-node traces).
    pub machine_seconds: f64,
    /// Seconds replaying the traces into the cache sweep.
    pub replay_seconds: f64,
    /// Total access events recorded.
    pub events: u64,
}

/// The (nodes, policy) configurations of the sweep: every policy per
/// multi-node count, and `rr` alone at one node (placement is a no-op
/// there).
fn mesh_cache_configs(node_counts: &[u32]) -> Vec<(u32, PlacementPolicy)> {
    node_counts
        .iter()
        .flat_map(|&n| {
            if n == 1 {
                vec![(1, PlacementPolicy::RoundRobin)]
            } else {
                vec![
                    (n, PlacementPolicy::RoundRobin),
                    (n, PlacementPolicy::LocalityAware),
                ]
            }
        })
        .collect()
}

/// Record one mesh machine-run per (program, impl, nodes, policy) —
/// machine runs fan out across the worker pool — then replay each node's
/// trace into the paper's 24-geometry sweep
/// ([`CacheBank::replay_parallel_many`]: private caches per node,
/// summaries summed). `fast_forward` selects the driver; results are
/// bit-identical either way (`tamsim perf --mesh` byte-compares the CSVs
/// to prove it).
pub fn mesh_cache_collect(
    programs: &[(&str, &Program)],
    node_counts: &[u32],
    fast_forward: bool,
) -> (Vec<MeshCacheRun>, MeshCachePerf) {
    mesh_cache_collect_with_opts(
        programs,
        node_counts,
        fast_forward,
        tamsim_core::LoweringOptions::default(),
    )
}

/// [`mesh_cache_collect`] with explicit lowering/simulator options.
pub fn mesh_cache_collect_with_opts(
    programs: &[(&str, &Program)],
    node_counts: &[u32],
    fast_forward: bool,
    opts: tamsim_core::LoweringOptions,
) -> (Vec<MeshCacheRun>, MeshCachePerf) {
    let geometries = paper_sweep();
    let configs = mesh_cache_configs(node_counts);
    let jobs: Vec<(usize, u32, PlacementPolicy, Implementation)> = programs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            configs.iter().flat_map(move |&(n, policy)| {
                CACHE_IMPLS.iter().map(move |&impl_| (pi, n, policy, impl_))
            })
        })
        .collect();

    let t0 = Instant::now();
    let recorded = tamsim_trace::par_map(jobs, move |(pi, n, policy, impl_)| {
        let mut exp = MeshExperiment::new(impl_, n).with_placement(policy);
        exp.fast_forward = fast_forward;
        exp.opts = opts;
        (pi, exp.run_recorded(programs[pi].1))
    });
    let machine_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut events = 0u64;
    let runs: Vec<MeshCacheRun> = recorded
        .into_iter()
        .map(|(pi, rec)| {
            events += rec.events();
            MeshCacheRun {
                name: programs[pi].0.to_string(),
                implementation: rec.run.implementation,
                nodes: rec.run.nodes,
                policy: rec.run.policy,
                cycles: rec.run.cycles,
                caches: CacheBank::replay_parallel_many(&geometries, &rec.logs),
                events: rec.events(),
            }
        })
        .collect();
    let replay_seconds = t1.elapsed().as_secs_f64();

    (
        runs,
        MeshCachePerf {
            machine_seconds,
            replay_seconds,
            events,
        },
    )
}

/// Time plain (unrecorded) mesh machine-runs over the exact job set of
/// [`mesh_cache_collect`], under either driver. Returns wall seconds for
/// the whole fan-out — `tamsim perf --mesh` calls this twice to put a
/// number on the event-horizon fast-forward without trace-recording cost
/// diluting the ratio.
pub fn mesh_machine_seconds(
    programs: &[(&str, &Program)],
    node_counts: &[u32],
    fast_forward: bool,
) -> f64 {
    mesh_machine_seconds_with_opts(
        programs,
        node_counts,
        fast_forward,
        tamsim_core::LoweringOptions::default(),
    )
}

/// [`mesh_machine_seconds`] with explicit lowering/simulator options —
/// `tamsim perf --mesh` runs it once per dispatch path to benchmark the
/// pre-decoded interpreter on multi-node workloads.
pub fn mesh_machine_seconds_with_opts(
    programs: &[(&str, &Program)],
    node_counts: &[u32],
    fast_forward: bool,
    opts: tamsim_core::LoweringOptions,
) -> f64 {
    let configs = mesh_cache_configs(node_counts);
    let jobs: Vec<(usize, u32, PlacementPolicy, Implementation)> = programs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            configs.iter().flat_map(move |&(n, policy)| {
                CACHE_IMPLS.iter().map(move |&impl_| (pi, n, policy, impl_))
            })
        })
        .collect();
    let t0 = Instant::now();
    let runs = tamsim_trace::par_map(jobs, move |(pi, n, policy, impl_)| {
        let mut exp = MeshExperiment::new(impl_, n).with_placement(policy);
        exp.fast_forward = fast_forward;
        exp.opts = opts;
        exp.run(programs[pi].1).cycles
    });
    let seconds = t0.elapsed().as_secs_f64();
    // Keep the runs observable so the whole fan-out can't be optimised
    // away under it.
    assert!(runs.iter().all(|&c| c > 0));
    seconds
}

/// Wall seconds for one MD pass over the suite with each mesh run fanned
/// across `threads` worker threads internally. The runs execute one at a
/// time — no outer pool — so the measurement isolates the parallel
/// driver's own speedup (or overhead, on a single-core host) instead of
/// mixing it with run-level parallelism. Unlike the cache-sweep timings
/// this is a driver benchmark, not a cache study, so one implementation
/// and one placement policy suffice; the full matrix would only multiply
/// the wall time without changing the speedup ratio.
pub fn mesh_parallel_seconds_with_opts(
    programs: &[(&str, &Program)],
    node_counts: &[u32],
    threads: u32,
    opts: tamsim_core::LoweringOptions,
) -> f64 {
    let t0 = Instant::now();
    for (_, program) in programs {
        for &n in node_counts {
            let mut exp = MeshExperiment::new(Implementation::Md, n)
                .with_placement(PlacementPolicy::RoundRobin)
                .with_threads(threads);
            exp.opts = opts;
            assert!(exp.run(program).cycles > 0);
        }
    }
    t0.elapsed().as_secs_f64()
}

/// Render collected mesh cache runs as the golden table: one row per
/// (program, nodes, policy, cache size), AM/MD misses at 4-way, and the
/// MD/AM total-cycle ratio per associativity at the paper's 24-cycle miss
/// penalty.
pub fn mesh_cache_table(runs: &[MeshCacheRun]) -> Table {
    let model = CycleModel::paper(MESH_MISS_PENALTY);
    let mut t = Table::new(&[
        "program",
        "nodes",
        "policy",
        "size",
        "am_misses_4w",
        "md_misses_4w",
        "ratio_1w",
        "ratio_2w",
        "ratio_4w",
    ]);
    // Runs arrive in (program, config, impl) job order: AM then MD per
    // configuration.
    let mut it = runs.iter();
    while let (Some(am), Some(md)) = (it.next(), it.next()) {
        assert_eq!(am.implementation, Implementation::Am);
        assert_eq!(md.implementation, Implementation::Md);
        assert_eq!((am.nodes, am.policy), (md.nodes, md.policy));
        for &size in &tamsim_cache::PAPER_CACHE_SIZES {
            let g4 = CacheGeometry::new(size, 4, tamsim_cache::PAPER_BLOCK_BYTES);
            let misses = |r: &MeshCacheRun| {
                r.caches
                    .iter()
                    .find(|(g, _)| *g == g4)
                    .map(|(_, s)| s.misses())
                    .expect("4-way geometry in sweep")
            };
            let mut row = vec![
                am.name.clone(),
                am.nodes.to_string(),
                am.policy.label().to_string(),
                format!("{}K", size / 1024),
                misses(am).to_string(),
                misses(md).to_string(),
            ];
            for assoc in [1u32, 2, 4] {
                let g = CacheGeometry::new(size, assoc, tamsim_cache::PAPER_BLOCK_BYTES);
                row.push(r3(
                    md.total_cycles(g, model) as f64 / am.total_cycles(g, model) as f64
                ));
            }
            t.row(row);
        }
    }
    t
}

/// The multi-node Figure 3 analogue behind `tests/golden/mesh_cache.csv`:
/// one recorded machine-run per (program, impl, nodes, policy), replayed
/// into all 24 paper geometries.
pub fn mesh_cache_sweep(programs: &[(&str, &Program)], node_counts: &[u32]) -> Table {
    mesh_cache_table(&mesh_cache_collect(programs, node_counts, true).0)
}

/// Per-node detail of one mesh run (the `tamsim mesh` report): where
/// every node's cycles went and what it holds at the end.
pub fn mesh_node_table(r: &MeshRunResult) -> Table {
    let mut t = Table::new(&[
        "node",
        "instructions",
        "run_cycles",
        "stall_cycles",
        "deliver_stalls",
        "idle_cycles",
        "sends",
        "live_frames",
    ]);
    for n in 0..r.nodes as usize {
        t.row(vec![
            n.to_string(),
            r.stats[n].instructions.to_string(),
            r.activity[n].cycles_in(NodeState::Run).to_string(),
            r.activity[n].cycles_in(NodeState::Stall).to_string(),
            r.deliver_stalls[n].to_string(),
            r.activity[n].cycles_in(NodeState::Idle).to_string(),
            r.stats[n].sends.to_string(),
            r.live_frames[n].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_cover_every_program_node_count_and_policy() {
        let fib = tamsim_programs::fib(8);
        let table = mesh_sweep(&[("fib", &fib)], &[1, 2]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // 1 node collapses to rr; 2 nodes carry all three policies.
        assert_eq!(lines.len(), 5, "header + 4 rows:\n{csv}");
        assert!(lines[1].starts_with("fib,1,rr,"));
        assert!(lines[2].starts_with("fib,2,rr,"));
        assert!(lines[3].starts_with("fib,2,local,"));
        assert!(lines[4].starts_with("fib,2,steal,"));
        // 1-node rows never touch the network and never steal.
        let one: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(&one[7..9], &["0", "0"], "1-node row: {}", lines[1]);
        assert_eq!(one[10], "0", "1-node row must not steal");
        // Static-policy rows must report zero steals.
        for line in &lines[2..4] {
            assert!(line.ends_with(",0"), "static policy stole: {line}");
        }
    }

    #[test]
    fn imbalance_is_bounded_by_the_node_count() {
        let fib = tamsim_programs::fib(9);
        for policy in PlacementPolicy::ALL {
            let r = MeshExperiment::new(Implementation::Am, 4)
                .with_placement(policy)
                .run(&fib);
            let b = load_imbalance(&r);
            assert!(
                (1.0..=4.0).contains(&b),
                "imbalance {b} out of range under {policy:?}"
            );
        }
    }

    #[test]
    fn scaling_table_matches_the_serial_driver_and_splits_workers() {
        let fib = tamsim_programs::fib(8);
        let table = mesh_scaling(&[("fib", &fib)], &[1, 2, 4]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows:\n{csv}");
        // Cycle counts come from the parallel driver; they must equal the
        // serial driver's.
        for (line, n) in lines[1..].iter().zip([1u32, 2, 4]) {
            let serial = mesh_run(&fib, Implementation::Md, n);
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells[1], n.to_string());
            assert_eq!(cells[3], serial.cycles.to_string(), "row: {line}");
        }
        // One worker on one node; a full complement once nodes >= threads.
        assert!(lines[1].split(',').nth(6) == Some("1"), "{}", lines[1]);
        assert_eq!(
            lines[3].split(',').nth(6),
            Some(MESH_SCALING_THREADS.to_string().as_str()),
            "{}",
            lines[3]
        );
    }

    #[test]
    fn cache_sweep_covers_every_config_and_size() {
        let fib = tamsim_programs::fib(8);
        let table = mesh_cache_sweep(&[("fib", &fib)], &[1, 2]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // (1 node, rr) + (2 nodes, rr) + (2 nodes, local), 8 sizes each.
        assert_eq!(lines.len(), 1 + 3 * 8, "header + rows:\n{csv}");
        assert!(lines[1].starts_with("fib,1,rr,1K,"));
        assert!(lines[9].starts_with("fib,2,rr,1K,"));
        assert!(lines[17].starts_with("fib,2,local,1K,"));
    }

    #[test]
    fn single_node_cache_sweep_matches_the_single_node_engine() {
        // The 1×1 mesh anchor extends to the cache model: replaying its
        // recorded trace into a geometry must reproduce the single-node
        // record/replay numbers exactly.
        let fib = tamsim_programs::fib(8);
        let (runs, perf) = mesh_cache_collect(&[("fib", &fib)], &[1], true);
        assert_eq!(runs.len(), 2); // AM + MD
        assert!(perf.events > 0);
        for run in &runs {
            let single = tamsim_core::Experiment::new(run.implementation).run_recorded(&fib);
            for (g, summary) in &run.caches {
                let expect = tamsim_cache::CacheBank::replay_parallel(&[*g], &single.log)
                    .pop()
                    .unwrap()
                    .1;
                assert_eq!(summary.misses(), expect.misses(), "{g:?}");
            }
        }
    }

    #[test]
    fn node_table_accounts_every_cycle() {
        let fib = tamsim_programs::fib(8);
        let r = mesh_run(&fib, Implementation::Md, 4);
        let table = mesh_node_table(&r);
        assert_eq!(table.to_csv().lines().count(), 5); // header + 4 nodes
        for n in 0..4 {
            let t = &r.activity[n];
            assert_eq!(
                t.cycles_in(NodeState::Run)
                    + t.cycles_in(NodeState::Stall)
                    + t.cycles_in(NodeState::Idle),
                t.spans.iter().map(|s| s.cycles).sum::<u64>(),
            );
        }
    }
}
