//! The mesh node-count sweep: how each implementation's cycle count — and
//! the MD/AM gap the paper measures on one node — evolves as the same
//! computation spreads across a dimension-order-routed 2D mesh.
//!
//! [`mesh_sweep`] is the data behind `tests/golden/mesh_nodes.csv`: the
//! mesh driver is bit-deterministic (fixed node iteration order, no
//! wall-clock anywhere), so the golden gate byte-compares its CSV exactly
//! like the single-node figures.

use tamsim_core::Implementation;
use tamsim_net::{MeshExperiment, MeshRunResult, NodeState};
use tamsim_tam::Program;

use crate::render::{r3, Table};

/// Node counts the golden sweep covers (1 = the single-node anchor).
pub const MESH_NODE_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// The three back-ends, in the sweep's column order.
const IMPLS: [Implementation; 3] = [
    Implementation::Am,
    Implementation::AmEnabled,
    Implementation::Md,
];

/// Run `program` on an `nodes`-node mesh under one back-end with the
/// default fabric timing.
pub fn mesh_run(program: &Program, impl_: Implementation, nodes: u32) -> MeshRunResult {
    MeshExperiment::new(impl_, nodes).run(program)
}

/// One row per (program, node count): cycles under each back-end, the
/// MD/AM cycle ratio, and the MD run's network traffic. Runs fan out
/// across the worker pool; row order is fixed regardless of worker count.
pub fn mesh_sweep(programs: &[(&str, &Program)], node_counts: &[u32]) -> Table {
    let jobs: Vec<(usize, u32, Implementation)> = programs
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            node_counts
                .iter()
                .flat_map(move |&n| IMPLS.iter().map(move |&impl_| (pi, n, impl_)))
        })
        .collect();
    let runs = tamsim_trace::par_map(jobs, |(pi, n, impl_)| mesh_run(programs[pi].1, impl_, n));

    let mut t = Table::new(&[
        "program",
        "nodes",
        "am_cycles",
        "am_en_cycles",
        "md_cycles",
        "md_am_ratio",
        "md_msgs",
        "md_hops",
    ]);
    let mut it = runs.into_iter();
    for (name, _) in programs {
        for &n in node_counts {
            let (am, am_en, md) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            t.row(vec![
                name.to_string(),
                n.to_string(),
                am.cycles.to_string(),
                am_en.cycles.to_string(),
                md.cycles.to_string(),
                r3(md.cycles as f64 / am.cycles as f64),
                md.net.delivered_msgs.to_string(),
                md.net.hop_traversals.to_string(),
            ]);
        }
    }
    t
}

/// Per-node detail of one mesh run (the `tamsim mesh` report): where
/// every node's cycles went and what it holds at the end.
pub fn mesh_node_table(r: &MeshRunResult) -> Table {
    let mut t = Table::new(&[
        "node",
        "instructions",
        "run_cycles",
        "stall_cycles",
        "idle_cycles",
        "sends",
        "live_frames",
    ]);
    for n in 0..r.nodes as usize {
        t.row(vec![
            n.to_string(),
            r.stats[n].instructions.to_string(),
            r.activity[n].cycles_in(NodeState::Run).to_string(),
            r.activity[n].cycles_in(NodeState::Stall).to_string(),
            r.activity[n].cycles_in(NodeState::Idle).to_string(),
            r.stats[n].sends.to_string(),
            r.live_frames[n].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_cover_every_program_and_node_count() {
        let fib = tamsim_programs::fib(8);
        let table = mesh_sweep(&[("fib", &fib)], &[1, 2]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows:\n{csv}");
        assert!(lines[1].starts_with("fib,1,"));
        assert!(lines[2].starts_with("fib,2,"));
        // 1-node rows never touch the network.
        assert!(lines[1].ends_with(",0,0"), "1-node row: {}", lines[1]);
    }

    #[test]
    fn node_table_accounts_every_cycle() {
        let fib = tamsim_programs::fib(8);
        let r = mesh_run(&fib, Implementation::Md, 4);
        let table = mesh_node_table(&r);
        assert_eq!(table.to_csv().lines().count(), 5); // header + 4 nodes
        for n in 0..4 {
            let t = &r.activity[n];
            assert_eq!(
                t.cycles_in(NodeState::Run)
                    + t.cycles_in(NodeState::Stall)
                    + t.cycles_in(NodeState::Idle),
                t.spans.iter().map(|s| s.cycles).sum::<u64>(),
            );
        }
    }
}
