//! Serve-mode reporting: offered vs achieved load, client-observed
//! tail-latency percentiles, per-request lifecycle rows, per-node
//! outstanding-request timelines, and the mesh profile's `serve` object.
//!
//! Everything here is a pure function of the run's
//! [`tamsim_net::RequestRecord`]s, which the drivers pin bit-identical
//! across lockstep, fast-forward, and every parallel thread count — so
//! every table and the profile JSON are byte-stable too (the golden and
//! determinism CI gates rely on this).

use tamsim_net::{ArrivalKind, LatencyHist, MeshRunResult, ServeRunResult};
use tamsim_obs::{MeshProfileMeta, MeshServeSummary};

use crate::net::net_summary;
use crate::render::{r1, Table};

/// Stable CSV / JSON label of an arrival-process shape.
pub fn arrival_kind_label(kind: ArrivalKind) -> &'static str {
    match kind {
        ArrivalKind::Poisson => "poisson",
        ArrivalKind::Fixed => "fixed",
    }
}

/// Nearest-rank percentile of a sorted sample: the smallest element with
/// at least `num/den` of the mass at or below it (exact integer rank —
/// no interpolation, so the value is always an observed latency).
///
/// # Panics
/// Panics on an empty sample or a ratio outside `(0, 1]`.
pub fn percentile(sorted: &[u64], num: u64, den: u64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(num > 0 && num <= den, "rank {num}/{den} outside (0, 1]");
    let rank = (sorted.len() as u64 * num).div_ceil(den).max(1) as usize;
    sorted[rank - 1]
}

/// All client-observed latencies of a run, sorted ascending (the input
/// to [`percentile`]).
pub fn sorted_latencies(r: &ServeRunResult) -> Vec<u64> {
    let mut v: Vec<u64> = r.records.iter().map(|rec| rec.latency()).collect();
    v.sort_unstable();
    v
}

/// The run's latency distribution as a log-bucketed histogram (the same
/// [`LatencyHist`] shape the network tracer uses for messages).
pub fn latency_hist(r: &ServeRunResult) -> LatencyHist {
    let mut h = LatencyHist::default();
    for rec in &r.records {
        h.record(rec.latency());
    }
    h
}

/// The load/latency table behind `serve_latency.csv`: one row per serve
/// run (a load sweep passes one run per offered rate), with achieved
/// throughput and the tail percentiles.
pub fn serve_latency_table(runs: &[&ServeRunResult]) -> Table {
    let mut t = Table::new(&[
        "impl",
        "policy",
        "nodes",
        "arrivals",
        "origins",
        "offered_ppm",
        "requests",
        "seed",
        "cycles",
        "achieved_ppm",
        "p50",
        "p90",
        "p99",
        "p999",
        "mean",
        "max",
        "queue_wait_max",
        "steals",
    ]);
    for r in runs {
        let lat = sorted_latencies(r);
        let hist = latency_hist(r);
        t.row(vec![
            r.mesh.implementation.label().to_string(),
            r.mesh.policy.label().to_string(),
            r.mesh.nodes.to_string(),
            arrival_kind_label(r.cfg.kind).to_string(),
            r.cfg.origins.label().to_string(),
            r.cfg.rate_ppm.to_string(),
            r.cfg.requests.to_string(),
            r.cfg.seed.to_string(),
            r.mesh.cycles.to_string(),
            r.achieved_ppm().to_string(),
            percentile(&lat, 50, 100).to_string(),
            percentile(&lat, 90, 100).to_string(),
            percentile(&lat, 99, 100).to_string(),
            percentile(&lat, 999, 1000).to_string(),
            r1(hist.mean()),
            hist.max.to_string(),
            r.records
                .iter()
                .map(|rec| rec.queue_wait())
                .max()
                .unwrap_or(0)
                .to_string(),
            r.mesh.steals.iter().sum::<u64>().to_string(),
        ]);
    }
    t
}

/// Per-request lifecycle rows (`serve_requests.csv`): arrival, inject,
/// completion, the derived latency split, and the returned words.
pub fn serve_requests_table(r: &ServeRunResult) -> Table {
    let mut t = Table::new(&[
        "id",
        "node",
        "arrival",
        "injected",
        "completed",
        "latency",
        "queue_wait",
        "result",
    ]);
    for rec in &r.records {
        t.row(vec![
            rec.id.to_string(),
            rec.node.to_string(),
            rec.arrival.to_string(),
            rec.injected.to_string(),
            rec.completed.to_string(),
            rec.latency().to_string(),
            rec.queue_wait().to_string(),
            rec.result
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }
    t
}

/// Per-node outstanding-request timeline (`serve_depth.csv`): one row
/// per (node, cycle) where the node's depth — requests injected there
/// but not yet completed — changes. Events at the same cycle coalesce
/// (completions apply before injections, so the row shows the settled
/// depth), making the timeline a step function of back-end pressure.
pub fn serve_depth_table(r: &ServeRunResult) -> Table {
    let mut t = Table::new(&["node", "cycle", "depth"]);
    // (cycle, delta) per node, completions (-1) sorted ahead of
    // injections (+1) at equal cycles via the delta sort key.
    let mut events: Vec<Vec<(u64, i64)>> = vec![Vec::new(); r.mesh.nodes as usize];
    for rec in &r.records {
        events[rec.node as usize].push((rec.injected, 1));
        events[rec.node as usize].push((rec.completed, -1));
    }
    for (n, ev) in events.iter_mut().enumerate() {
        ev.sort_unstable();
        let mut depth: i64 = 0;
        let mut i = 0;
        while i < ev.len() {
            let cycle = ev[i].0;
            while i < ev.len() && ev[i].0 == cycle {
                depth += ev[i].1;
                i += 1;
            }
            debug_assert!(depth >= 0, "more completions than injections");
            t.row(vec![n.to_string(), cycle.to_string(), depth.to_string()]);
        }
        debug_assert_eq!(depth, 0, "node {n} ends with requests outstanding");
    }
    t
}

/// The profile's `serve` object, adapted from the run's records.
pub fn serve_summary(r: &ServeRunResult) -> MeshServeSummary {
    let lat = sorted_latencies(r);
    let hist = latency_hist(r);
    let waits: Vec<u64> = r.records.iter().map(|rec| rec.queue_wait()).collect();
    MeshServeSummary {
        kind: arrival_kind_label(r.cfg.kind).to_string(),
        origins: r.cfg.origins.label().to_string(),
        seed: r.cfg.seed,
        offered_ppm: r.cfg.rate_ppm,
        achieved_ppm: r.achieved_ppm(),
        requests: r.records.len() as u64,
        p50: percentile(&lat, 50, 100),
        p90: percentile(&lat, 90, 100),
        p99: percentile(&lat, 99, 100),
        p999: percentile(&lat, 999, 1000),
        mean: hist.mean(),
        max: hist.max,
        queue_wait_mean: if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        },
        queue_wait_max: waits.iter().copied().max().unwrap_or(0),
        steals: r.mesh.steals.iter().sum(),
        buckets: hist
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| {
                let (lo, hi) = LatencyHist::bucket_bounds(k);
                (lo, hi, c)
            })
            .collect(),
    }
}

/// Render a serve run's `profile.json`: run identity and the `net`
/// object as in [`crate::net::mesh_profile`], plus the `serve` object.
pub fn serve_profile(r: &ServeRunResult, program: &str) -> String {
    let m: &MeshRunResult = &r.mesh;
    let meta = MeshProfileMeta {
        program: program.to_string(),
        implementation: m.implementation.label().to_string(),
        nodes: m.nodes,
        width: m.width,
        height: m.height,
        cycles: m.cycles,
        instructions: m.instructions,
    };
    // Serve runs are untraced and reported per scenario; the parallel
    // object stays out so profiles byte-compare across thread counts.
    tamsim_obs::mesh_profile_json(&meta, &net_summary(m), None, Some(&serve_summary(r)))
}

#[cfg(test)]
mod tests {
    use tamsim_core::Implementation;
    use tamsim_net::{MeshExperiment, ServeConfig};

    use super::*;

    fn serve_run() -> ServeRunResult {
        MeshExperiment::new(Implementation::Md, 4)
            .serve(&tamsim_programs::fib(8), &ServeConfig::new(20_000, 16, 5))
    }

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50, 100), 50);
        assert_eq!(percentile(&v, 90, 100), 90);
        assert_eq!(percentile(&v, 99, 100), 99);
        assert_eq!(percentile(&v, 999, 1000), 100);
        assert_eq!(percentile(&v, 1, 100), 1);
        assert_eq!(percentile(&[7], 50, 100), 7);
        assert_eq!(percentile(&[7], 999, 1000), 7);
        let two = [3, 9];
        assert_eq!(percentile(&two, 50, 100), 3);
        assert_eq!(percentile(&two, 99, 100), 9);
    }

    #[test]
    fn latency_table_row_is_consistent_with_the_records() {
        let r = serve_run();
        let t = serve_latency_table(&[&r]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.starts_with("MD,rr,4,poisson,uniform,20000,16,5,"));
        assert!(row.ends_with(",0"), "static policy must report 0 steals");
        let lat = sorted_latencies(&r);
        assert!(row.contains(&format!(",{},", percentile(&lat, 50, 100))));
    }

    #[test]
    fn requests_table_has_one_row_per_request() {
        let r = serve_run();
        let csv = serve_requests_table(&r).to_csv();
        assert_eq!(csv.lines().count(), 1 + r.records.len());
        // fib(8) = 21 on every row.
        for line in csv.lines().skip(1) {
            assert!(line.ends_with(",21"), "unexpected result in {line}");
        }
    }

    #[test]
    fn depth_timeline_steps_up_and_drains_to_zero() {
        let r = serve_run();
        let t = serve_depth_table(&r);
        let csv = t.to_csv();
        assert!(csv.lines().count() > 1, "no depth events:\n{csv}");
        // Per node: first event raises depth to 1+, last settles at 0.
        for n in 0..r.mesh.nodes {
            let rows: Vec<&str> = csv
                .lines()
                .skip(1)
                .filter(|l| l.starts_with(&format!("{n},")))
                .collect();
            if rows.is_empty() {
                continue; // no request originated here
            }
            assert!(
                rows[0].ends_with(",1"),
                "first event must inject: {}",
                rows[0]
            );
            assert!(
                rows.last().unwrap().ends_with(",0"),
                "node {n} must drain: {}",
                rows.last().unwrap()
            );
        }
    }

    #[test]
    fn serve_profile_is_valid_json_with_the_serve_object() {
        let r = serve_run();
        let profile = serve_profile(&r, "fib");
        tamsim_obs::json::validate(&profile).expect("serve profile must parse");
        assert!(profile.contains("\"schema\":\"tamsim-mesh-profile/1\""));
        assert!(profile.contains(
            "\"serve\":{\"kind\":\"poisson\",\"origins\":\"uniform\",\"seed\":5,\
             \"offered_ppm\":20000,"
        ));
        assert!(profile.contains("\"requests\":16,"));
        assert!(!profile.contains("\"parallel\""));
        let s = serve_summary(&r);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert_eq!(s.p999, s.max, "16 samples: p999 is the max");
        assert_eq!(
            s.buckets.iter().map(|b| b.2).sum::<u64>(),
            16,
            "histogram mass must cover every request"
        );
    }
}
