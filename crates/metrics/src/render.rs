//! Minimal text/CSV rendering helpers (no external dependencies).

/// A simple column-aligned text table with a CSV twin.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated; cells are simple numerics/labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio with 3 decimals.
pub fn r3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a quantity with 1 decimal.
pub fn r1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut t = Table::new(&["name", "x"]);
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["long-name".into(), "10".into()]);
        let text = t.to_text();
        assert!(text.contains("name"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "name,x");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
