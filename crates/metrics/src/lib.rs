//! Measurement, statistics, and report rendering for the reproduction:
//! Table 2 granularity metrics, the Section 3.1 access comparison, the
//! Figure 3–6 cycle-ratio curves, and the Figure 1/Figure 2 scheduling
//! experiments.
//!
//! [`SuiteData::collect`] runs every (program, implementation) pair once,
//! streaming its trace through a [`tamsim_cache::CacheBank`] covering the
//! paper's full cache sweep; every table and figure is then derived from
//! that single dataset.

pub mod experiments;
pub mod figures;
pub mod render;
pub mod suite;
pub mod tables;

pub use experiments::{capture_schedule, figure1, figure1_program, figure2, SchedEvent};
pub use figures::{block_sweep, figure3, figure6, figure_per_program};
pub use render::Table;
pub use suite::{geomean, ProgramRun, SuiteData};
pub use tables::{accesses, region_breakdown, table1, table2};
