//! Measurement, statistics, and report rendering for the reproduction:
//! Table 2 granularity metrics, the Section 3.1 access comparison, the
//! Figure 3–6 cycle-ratio curves, and the Figure 1/Figure 2 scheduling
//! experiments.
//!
//! [`SuiteData::collect`] runs every (program, implementation) pair once,
//! recording its access trace, then replays each recording into the
//! paper's full cache sweep in parallel
//! (`tamsim_cache::CacheBank::replay_parallel`); every table and figure is
//! then derived from that single dataset. The legacy streaming collector
//! ([`SuiteData::collect_inline`]) survives as the baseline that
//! `tamsim perf` benchmarks the record/replay engine against.

pub mod experiments;
pub mod figures;
pub mod mesh;
pub mod net;
pub mod quantum;
pub mod render;
pub mod serve;
pub mod suite;
pub mod tables;

pub use experiments::{capture_schedule, figure1, figure1_program, figure2, SchedEvent};
pub use figures::{block_sweep, figure3, figure6, figure_per_program};
pub use mesh::{
    load_imbalance, mesh_cache_collect, mesh_cache_collect_with_opts, mesh_cache_sweep,
    mesh_cache_table, mesh_machine_seconds, mesh_machine_seconds_with_opts, mesh_node_table,
    mesh_parallel_seconds_with_opts, mesh_run, mesh_scaling, mesh_sweep, MeshCachePerf,
    MeshCacheRun, MESH_CACHE_NODE_SWEEP, MESH_NODE_SWEEP, MESH_SCALING_SWEEP, MESH_SCALING_THREADS,
};
pub use net::{
    mesh_latency_table, mesh_links_table, mesh_profile, net_summary, net_trace_view, node_tracks,
};
pub use quantum::{hotspot_table, quantum_histogram, quantum_summary};
pub use render::Table;
pub use serve::{
    arrival_kind_label, percentile, serve_depth_table, serve_latency_table, serve_profile,
    serve_requests_table, serve_summary,
};
pub use suite::{geomean, ProgramRun, SuiteData, SuitePerf};
pub use tables::{accesses, region_breakdown, table1, table2};
