//! Figures 3–6: MD/AM total-cycle ratio curves over cache size, plus the
//! block-size sweep backing the paper's "64-byte blocks performed best"
//! remark.

use crate::render::{r3, Table};
use crate::suite::{geomean, SuiteData};
use tamsim_cache::{
    CacheGeometry, CycleModel, PAPER_BLOCK_BYTES, PAPER_CACHE_SIZES, PAPER_MISS_COSTS,
};

fn size_label(bytes: u32) -> String {
    format!("{}K", bytes / 1024)
}

/// Figure 3: geometric-mean MD/AM ratio vs cache size, one table per miss
/// cost, one column per associativity (the paper's three graphs with
/// three curves each).
pub fn figure3(data: &SuiteData) -> Vec<(u64, Table)> {
    let names = data.name_refs();
    PAPER_MISS_COSTS
        .iter()
        .map(|&cost| {
            let model = CycleModel::paper(cost);
            let mut t = Table::new(&["size", "1-way", "2-way", "4-way"]);
            for &size in &PAPER_CACHE_SIZES {
                let mut row = vec![size_label(size)];
                for assoc in [1u32, 2, 4] {
                    let g = CacheGeometry::new(size, assoc, PAPER_BLOCK_BYTES);
                    row.push(r3(data.geomean_ratio(&names, g, model)));
                }
                t.row(row);
            }
            (cost, t)
        })
        .collect()
}

/// Figures 4 and 5: per-program MD/AM ratio curves (plus the geometric
/// mean) at a fixed associativity — 4 for Figure 4, 1 (direct-mapped) for
/// Figure 5 — one table per miss cost.
pub fn figure_per_program(data: &SuiteData, assoc: u32) -> Vec<(u64, Table)> {
    let names = data.name_refs();
    let mut header: Vec<&str> = vec!["size"];
    header.extend(names.iter().copied());
    header.push("mean");
    PAPER_MISS_COSTS
        .iter()
        .map(|&cost| {
            let model = CycleModel::paper(cost);
            let mut t = Table::new(&header);
            for &size in &PAPER_CACHE_SIZES {
                let g = CacheGeometry::new(size, assoc, PAPER_BLOCK_BYTES);
                let mut row = vec![size_label(size)];
                for name in &names {
                    row.push(r3(data.ratio(name, g, model)));
                }
                row.push(r3(data.geomean_ratio(&names, g, model)));
                t.row(row);
            }
            (cost, t)
        })
        .collect()
}

/// Figure 6: geometric mean excluding selection sort, direct-mapped
/// caches; one column per miss cost.
pub fn figure6(data: &SuiteData) -> Table {
    let names: Vec<&str> = data
        .name_refs()
        .into_iter()
        .filter(|n| *n != "SS")
        .collect();
    let mut t = Table::new(&["size", "12-cycle", "24-cycle", "48-cycle"]);
    for &size in &PAPER_CACHE_SIZES {
        let g = CacheGeometry::new(size, 1, PAPER_BLOCK_BYTES);
        let mut row = vec![size_label(size)];
        for cost in PAPER_MISS_COSTS {
            row.push(r3(data.geomean_ratio(&names, g, CycleModel::paper(cost))));
        }
        t.row(row);
    }
    t
}

/// Block-size sweep (§3.3): geometric-mean total cycles for both
/// implementations per block size, normalized to the 64-byte row, at a
/// fixed 8 KB 4-way configuration and 24-cycle miss cost. The paper: "we
/// show data for 64-byte blocks, the size at which both systems performed
/// best".
pub fn block_sweep(data: &SuiteData, block_sizes: &[u32]) -> Table {
    use tamsim_core::Implementation;
    let names = data.name_refs();
    let model = CycleModel::paper(24);
    let cycles_gm = |impl_: Implementation, block: u32| {
        let g = CacheGeometry::new(8192, 4, block);
        geomean(
            names
                .iter()
                .map(|n| data.get(n, impl_).cycles(g, model) as f64),
        )
    };
    let base_md = cycles_gm(Implementation::Md, 64);
    let base_am = cycles_gm(Implementation::Am, 64);
    let mut t = Table::new(&["block", "MD cycles/64B", "AM cycles/64B"]);
    for &b in block_sizes {
        t.row(vec![
            format!("{b}B"),
            r3(cycles_gm(Implementation::Md, b) / base_md),
            r3(cycles_gm(Implementation::Am, b) / base_am),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_cache::paper_sweep;
    use tamsim_core::Implementation;
    use tamsim_programs::PaperBenchmark;

    fn data() -> SuiteData {
        SuiteData::collect(
            vec![
                PaperBenchmark {
                    name: "FIB",
                    program: tamsim_programs::fib(7),
                },
                PaperBenchmark {
                    name: "SS",
                    program: tamsim_programs::ss(10),
                },
            ],
            &[Implementation::Md, Implementation::Am],
            paper_sweep(),
        )
    }

    #[test]
    fn figure3_has_three_tables_of_eight_sizes() {
        let d = data();
        let f = figure3(&d);
        assert_eq!(f.len(), 3);
        for (_, t) in &f {
            assert_eq!(t.to_csv().lines().count(), 9);
        }
    }

    #[test]
    fn per_program_figures_include_mean_column() {
        let d = data();
        let f = figure_per_program(&d, 1);
        assert!(f[0].1.to_csv().lines().next().unwrap().ends_with("mean"));
    }

    #[test]
    fn figure6_excludes_ss() {
        let d = data();
        let t = figure6(&d).to_csv();
        // Only sizes and three ratio columns; SS is not a column, and the
        // values differ from the all-program geomean when SS dominates.
        assert!(t.lines().next().unwrap().starts_with("size,12-cycle"));
    }
}
