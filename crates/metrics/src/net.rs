//! Adapters from a mesh run's network observability data to the obs
//! crate's renderers and to report tables: Perfetto node tracks, message
//! flows and occupancy counters for `mesh_trace.json`, the per-link
//! telemetry table behind `mesh_links.csv`, latency-histogram tables,
//! and the mesh `profile.json`.
//!
//! `tamsim-obs` deliberately knows nothing about the simulator, and
//! `tamsim-net` knows nothing about rendering; this module is the
//! bridge.

use tamsim_mdp::Priority;
use tamsim_net::{BufKind, LatencyHist, MeshRunResult, NetTrace, NodeState};
use tamsim_obs::{
    MeshCounterSample, MeshFlow, MeshLatencyRow, MeshLinkRow, MeshNetSummary, MeshNetTrace,
    MeshParallelSummary, MeshProfileMeta, MeshThreadRow, NodeTrack, NodeTrackSpan,
};

use crate::render::{r3, Table};

fn pri_label(pri: Priority) -> &'static str {
    match pri {
        Priority::Low => "low",
        Priority::High => "high",
    }
}

/// One Perfetto track per node from the run's activity timeline; idle
/// cycles stay as gaps so the run/stall texture is visible at a glance.
pub fn node_tracks(r: &MeshRunResult) -> Vec<NodeTrack> {
    r.activity
        .iter()
        .enumerate()
        .map(|(n, t)| NodeTrack {
            name: format!("node {n}"),
            spans: t
                .spans
                .iter()
                .filter_map(|s| {
                    let label = match s.state {
                        NodeState::Run => "run",
                        NodeState::Stall => "stall",
                        NodeState::Idle => return None,
                    };
                    Some(NodeTrackSpan {
                        label,
                        start: s.start,
                        cycles: s.cycles,
                    })
                })
                .collect(),
        })
        .collect()
}

/// The network layer of a traced run's Perfetto export: one flow arrow
/// per delivered message (send slice on the source, inlet slice on the
/// destination) plus per-node buffer-occupancy counters. Empty when the
/// run was not traced.
pub fn net_trace_view(r: &MeshRunResult) -> MeshNetTrace {
    let Some(trace) = &r.net_trace else {
        return MeshNetTrace::default();
    };
    let flows = trace
        .records
        .iter()
        .filter_map(|m| {
            let deliver = m.deliver_cycle?;
            Some(MeshFlow {
                id: m.id,
                src: m.src,
                dest: m.dest,
                label: format!(
                    "msg {} ({}, {}w) → n{}",
                    m.id,
                    pri_label(m.pri),
                    m.len,
                    m.dest
                ),
                inject: m.inject_cycle,
                // The send slice covers serialization out of the inject
                // queue; at bandwidth b that is ceil(len / b) cycles, but
                // the trace does not carry the config, so use the word
                // count (bandwidth 1) clamped to at least one visible
                // cycle.
                send_dur: (m.len as u64).max(1),
                deliver,
                inlet_dur: m
                    .dispatch_cycle
                    .map(|d| d.saturating_sub(deliver).max(1))
                    .unwrap_or(1),
            })
        })
        .collect();

    // Occupancy samples arrive in time order with one (node, buffer)
    // value each; fold them into running per-node totals so each counter
    // event carries the node's full inject/recv/links picture.
    let nodes = r.nodes as usize;
    let mut inject = vec![0u32; nodes];
    let mut recv = vec![0u32; nodes];
    let mut links = vec![[0u32; 4]; nodes];
    let mut counters = Vec::with_capacity(trace.occupancy.len());
    for s in &trace.occupancy {
        let n = s.node as usize;
        match s.kind {
            BufKind::Inject => inject[n] = s.used_words,
            BufKind::Recv => recv[n] = s.used_words,
            BufKind::Link(d) => links[n][d.index()] = s.used_words,
        }
        counters.push(MeshCounterSample {
            node: s.node,
            cycle: s.cycle,
            inject_words: inject[n],
            recv_words: recv[n],
            link_words: links[n].iter().sum(),
        });
    }
    MeshNetTrace { flows, counters }
}

fn latency_rows(kind: &'static str, entries: &[tamsim_net::HistEntry]) -> Vec<MeshLatencyRow> {
    entries
        .iter()
        .map(|e| MeshLatencyRow {
            kind,
            pri: pri_label(e.pri),
            hops: e.hops,
            count: e.hist.count,
            mean: e.hist.mean(),
            max: e.hist.max,
            buckets: e
                .hist
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| {
                    let (lo, hi) = LatencyHist::bucket_bounds(k);
                    (lo, hi, c)
                })
                .collect(),
        })
        .collect()
}

/// Everything the mesh profile's `net` object reports, adapted from the
/// run's fabric counters, per-link telemetry, and (when traced) latency
/// histograms.
pub fn net_summary(r: &MeshRunResult) -> MeshNetSummary {
    let mut latency = Vec::new();
    let (traced_msgs, dropped, unmatched) = match &r.net_trace {
        Some(trace) => {
            latency.extend(latency_rows("deliver", &trace.deliver_hist));
            latency.extend(latency_rows("dispatch", &trace.dispatch_hist));
            (
                trace.records.len() as u64 + trace.dropped,
                trace.dropped,
                trace.unmatched_dispatches,
            )
        }
        None => (0, 0, 0),
    };
    MeshNetSummary {
        stats: vec![
            ("injected_msgs", r.net.injected_msgs),
            ("injected_words", r.net.injected_words),
            ("delivered_msgs", r.net.delivered_msgs),
            ("delivered_words", r.net.delivered_words),
            ("hop_traversals", r.net.hop_traversals),
            ("latency_total", r.net.latency_total),
            ("inject_stalls", r.net.inject_stalls),
            ("deliver_stalls", r.net.deliver_stalls),
        ],
        deliver_stalls_by_node: r.deliver_stalls.clone(),
        links: r
            .link_stats
            .iter()
            .map(|l| MeshLinkRow {
                node: l.node,
                link: l.kind.label().to_string(),
                msgs_in: l.msgs_in,
                words_in: l.words_in,
                words_out: l.words_out,
                queued_words: l.queued_words as u64,
                busy_cycles: l.busy_cycles,
                high_water: l.high_water as u64,
                stall_cycles: l.stall_cycles,
            })
            .collect(),
        latency,
        traced_msgs,
        dropped,
        unmatched_dispatches: unmatched,
    }
}

/// Render the mesh `profile.json`: run identity, the `parallel` object
/// (per-thread utilization, present only for parallel-driver runs), plus
/// the `net` object.
pub fn mesh_profile(r: &MeshRunResult, program: &str) -> String {
    let meta = MeshProfileMeta {
        program: program.to_string(),
        implementation: r.implementation.label().to_string(),
        nodes: r.nodes,
        width: r.width,
        height: r.height,
        cycles: r.cycles,
        instructions: r.instructions,
    };
    let parallel = r.thread_stats.as_ref().map(|ts| MeshParallelSummary {
        threads: ts.len() as u32,
        workers: ts
            .iter()
            .map(|t| MeshThreadRow {
                first_node: t.first_node,
                nodes: t.nodes,
                steps: t.steps,
                deliveries: t.deliveries,
            })
            .collect(),
    });
    tamsim_obs::mesh_profile_json(&meta, &net_summary(r), parallel.as_ref(), None)
}

/// The link-utilization heatmap behind `mesh_links.csv`: one row per
/// buffer (mesh link, inject queue, recv queue) with its traffic,
/// occupancy high-water mark, back-pressure stalls, and utilization
/// (busy cycles over the whole run).
pub fn mesh_links_table(r: &MeshRunResult) -> Table {
    let mut t = Table::new(&[
        "node",
        "link",
        "msgs_low",
        "msgs_high",
        "words_in_low",
        "words_in_high",
        "words_out",
        "queued_words",
        "busy_cycles",
        "high_water",
        "stall_cycles",
        "util",
    ]);
    for l in &r.link_stats {
        t.row(vec![
            l.node.to_string(),
            l.kind.label().to_string(),
            l.msgs_in[0].to_string(),
            l.msgs_in[1].to_string(),
            l.words_in[0].to_string(),
            l.words_in[1].to_string(),
            l.words_out.to_string(),
            l.queued_words.to_string(),
            l.busy_cycles.to_string(),
            l.high_water.to_string(),
            l.stall_cycles.to_string(),
            if r.cycles > 0 {
                r3(l.busy_cycles as f64 / r.cycles as f64)
            } else {
                r3(0.0)
            },
        ]);
    }
    t
}

/// Latency histograms of a traced run as a table: one row per
/// (measurement kind, priority, hop count), the histogram rendered as
/// `lo-hi:count` segments so the CSV stays one cell per row.
pub fn mesh_latency_table(trace: &NetTrace) -> Table {
    let mut t = Table::new(&["kind", "pri", "hops", "count", "mean", "max", "histogram"]);
    for (kind, entries) in [
        ("deliver", &trace.deliver_hist),
        ("dispatch", &trace.dispatch_hist),
    ] {
        for e in entries {
            let hist = e
                .hist
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| {
                    let (lo, hi) = LatencyHist::bucket_bounds(k);
                    format!("{lo}-{hi}:{c}")
                })
                .collect::<Vec<_>>()
                .join(";");
            t.row(vec![
                kind.to_string(),
                pri_label(e.pri).to_string(),
                e.hops.to_string(),
                e.hist.count.to_string(),
                r3(e.hist.mean()),
                e.hist.max.to_string(),
                hist,
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use tamsim_core::Implementation;
    use tamsim_net::{MeshExperiment, NetTraceMode};

    use super::*;

    fn traced_run() -> MeshRunResult {
        MeshExperiment::new(Implementation::Md, 4)
            .traced(NetTraceMode::Full)
            .run(&tamsim_programs::fib(8))
    }

    #[test]
    fn traced_run_renders_flows_counters_and_valid_json() {
        let r = traced_run();
        let view = net_trace_view(&r);
        assert!(!view.flows.is_empty(), "no message flows on 4 nodes");
        assert!(!view.counters.is_empty(), "full mode must sample occupancy");
        let trace = tamsim_obs::mesh_trace_json_traced(
            "fib",
            r.implementation.label(),
            r.cycles,
            &node_tracks(&r),
            &view,
        );
        tamsim_obs::json::validate(&trace).expect("traced mesh trace must parse");
        assert!(trace.contains("\"ph\":\"s\""));
        assert!(trace.contains("\"ph\":\"f\",\"bp\":\"e\""));

        let profile = mesh_profile(&r, "fib");
        tamsim_obs::json::validate(&profile).expect("mesh profile must parse");
        assert!(profile.contains("\"schema\":\"tamsim-mesh-profile/1\""));
        assert!(profile.contains("\"kind\":\"deliver\""));
        assert!(profile.contains("\"kind\":\"dispatch\""));
    }

    #[test]
    fn links_table_covers_every_buffer_and_conserves_words() {
        let r = traced_run();
        let table = mesh_links_table(&r);
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.link_stats.len());
        for l in &r.link_stats {
            assert_eq!(
                l.words_in_total(),
                l.words_out + l.queued_words as u64,
                "words leaked on node {} ({})",
                l.node,
                l.kind.label()
            );
        }
        // A 2×2 mesh has two links per node plus inject and recv.
        assert_eq!(r.link_stats.len(), 4 * 4);
    }

    #[test]
    fn latency_table_counts_every_delivered_message() {
        let r = traced_run();
        let trace = r.net_trace.as_ref().unwrap();
        let table = mesh_latency_table(trace);
        let csv = table.to_csv();
        assert!(csv.lines().count() > 1, "no latency rows:\n{csv}");
        let delivered: u64 = trace.deliver_hist.iter().map(|e| e.hist.count).sum();
        assert_eq!(delivered, r.net.delivered_msgs);
    }

    #[test]
    fn untraced_run_has_empty_net_view_but_full_link_stats() {
        let r = MeshExperiment::new(Implementation::Md, 4).run(&tamsim_programs::fib(8));
        assert!(r.net_trace.is_none());
        let view = net_trace_view(&r);
        assert!(view.flows.is_empty() && view.counters.is_empty());
        // Always-on telemetry is there regardless of tracing.
        assert_eq!(r.link_stats.len(), 16);
        assert!(r.link_stats.iter().any(|l| l.words_out > 0));
        assert_eq!(r.deliver_stalls.iter().sum::<u64>(), r.net.deliver_stalls);
    }
}
