//! Text rendering of the profiler's quantum statistics.
//!
//! The profile subcommand prints these tables so the paper's scheduling
//! contrast is readable straight from the terminal; the same numbers ship
//! machine-readably in `profile.json`.

use crate::render::{r1, r3, Table};
use tamsim_obs::Profile;

/// One summary row per profiled implementation: the quantum-level
/// scheduling metrics Section 4 of the paper argues about.
pub fn quantum_summary(profiles: &[&Profile]) -> Table {
    let mut t = Table::new(&[
        "impl",
        "cycles",
        "threads",
        "quanta",
        "tpq",
        "sched events",
        "threads/event",
        "interrupts/thread",
        "mean qlen",
        "median qlen",
        "p90 qlen",
        "max qlen",
    ]);
    for p in profiles {
        let q = &p.timeline.quanta;
        t.row(vec![
            p.meta.implementation.clone(),
            p.timeline.total_cycles().to_string(),
            q.threads.to_string(),
            q.count().to_string(),
            r1(q.threads_per_quantum()),
            q.activations.to_string(),
            r1(q.threads_per_activation()),
            r3(q.interruptions_per_thread()),
            r1(q.mean_cycles()),
            q.median_cycles().to_string(),
            q.percentile_cycles(0.9).to_string(),
            q.max_cycles().to_string(),
        ]);
    }
    t
}

/// Threads-per-quantum histogram, one column per profiled implementation.
pub fn quantum_histogram(profiles: &[&Profile]) -> Table {
    let mut header = vec!["threads/quantum".to_string()];
    header.extend(profiles.iter().map(|p| p.meta.implementation.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    let hists: Vec<Vec<(u32, u64)>> = profiles
        .iter()
        .map(|p| p.timeline.quanta.threads_histogram())
        .collect();
    let max = hists
        .iter()
        .filter_map(|h| h.last().map(|&(t, _)| t))
        .max()
        .unwrap_or(0);
    for threads in 1..=max {
        let mut row = vec![threads.to_string()];
        for h in &hists {
            let count = h
                .iter()
                .find(|&&(t, _)| t == threads)
                .map_or(0, |&(_, c)| c);
            row.push(count.to_string());
        }
        t.row(row);
    }
    t
}

/// Per-region hotspot table for one profile.
pub fn hotspot_table(profile: &Profile) -> Table {
    let mut t = Table::new(&["region", "symbol", "fetches", "region%", "total%"]);
    for region in &profile.hotspots.regions {
        for row in &region.rows {
            t.row(vec![
                region.region.name().to_string(),
                row.name.clone(),
                row.fetches.to_string(),
                r1(row.region_share * 100.0),
                r1(row.total_share * 100.0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_core::{Experiment, Implementation};
    use tamsim_programs::fib;

    fn profile(impl_: Implementation) -> Profile {
        Experiment::new(impl_)
            .run_profiled(&fib(8))
            .profile()
            .expect("profile analysis failed")
    }

    #[test]
    fn summary_renders_one_row_per_impl() {
        let am = profile(Implementation::Am);
        let md = profile(Implementation::Md);
        let text = quantum_summary(&[&am, &md]).to_text();
        assert!(text.contains("AM"), "{text}");
        assert!(text.contains("MD"), "{text}");
        assert!(text.contains("tpq"), "{text}");
        assert_eq!(text.lines().count(), 4, "{text}"); // header + rule + 2 rows
    }

    #[test]
    fn histogram_has_a_column_per_impl_and_covers_all_quanta() {
        let am = profile(Implementation::Am);
        let text = quantum_histogram(&[&am]).to_csv();
        let total: u64 = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total as usize, am.timeline.quanta.count());
    }

    #[test]
    fn hotspots_render_with_symbols() {
        let am = profile(Implementation::Am);
        let text = hotspot_table(&am).to_text();
        assert!(text.contains("system code"), "{text}");
        assert!(text.contains("sys:"), "{text}");
    }
}
