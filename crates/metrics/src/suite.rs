//! Collecting the measurement dataset: one recorded machine run per
//! (program, implementation), replayed into every cache configuration in
//! parallel.

use std::collections::HashMap;
use std::time::Instant;

use tamsim_cache::{CacheBank, CacheGeometry, CacheSummary, CycleModel};
use tamsim_core::{Experiment, Implementation, LoweringOptions, RecordedRun, RunResult};
use tamsim_programs::PaperBenchmark;

/// One traced run of one program under one implementation.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// Benchmark name ("MMT", …).
    pub name: String,
    /// Which back-end ran.
    pub implementation: Implementation,
    /// Instruction counts, granularity, and Section 3.1 access counts.
    pub run: RunResult,
    /// Cache outcome for every geometry in the sweep.
    pub caches: Vec<(CacheGeometry, CacheSummary)>,
}

impl ProgramRun {
    /// Total cycles at `geometry` under `model`.
    pub fn cycles(&self, geometry: CacheGeometry, model: CycleModel) -> u64 {
        let (_, summary) = self
            .caches
            .iter()
            .find(|(g, _)| *g == geometry)
            .unwrap_or_else(|| panic!("geometry {geometry:?} not in sweep"));
        model.total_cycles(self.run.instructions, summary)
    }
}

/// Stable dense index for an [`Implementation`] (slot in the per-name
/// lookup table).
fn impl_slot(impl_: Implementation) -> usize {
    match impl_ {
        Implementation::Am => 0,
        Implementation::AmEnabled => 1,
        Implementation::Md => 2,
    }
}

/// Number of [`Implementation`] variants (size of the lookup table).
const N_IMPLS: usize = 3;

/// Wall-clock breakdown of a [`SuiteData::collect_timed`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuitePerf {
    /// Seconds spent simulating machines (recording traces).
    pub machine_seconds: f64,
    /// Seconds spent replaying traces into the cache sweep.
    pub replay_seconds: f64,
    /// Total access events recorded across all runs.
    pub events: u64,
}

/// The full dataset for a suite of programs.
#[derive(Debug, Clone, Default)]
pub struct SuiteData {
    /// All runs, in collection order.
    runs: Vec<ProgramRun>,
    /// `name → per-implementation index into `runs``; lets [`SuiteData::get`]
    /// look up by `&str` without allocating a key.
    index: HashMap<String, [Option<usize>; N_IMPLS]>,
    /// Program names in suite order.
    pub names: Vec<String>,
    /// The geometry sweep used.
    pub geometries: Vec<CacheGeometry>,
}

impl SuiteData {
    /// Run every program of `suite` under each of `impls` once, recording
    /// each trace, then replay the recordings into the cache sweep over
    /// `geometries`. Machine runs execute in parallel (they are
    /// independent single-threaded simulations); each replay then shards
    /// the geometry sweep across all cores.
    pub fn collect(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
    ) -> SuiteData {
        Self::collect_timed(suite, impls, geometries).0
    }

    /// [`SuiteData::collect`] with a wall-clock breakdown of the machine
    /// (record) phase vs the cache (replay) phase.
    pub fn collect_timed(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
    ) -> (SuiteData, SuitePerf) {
        Self::collect_timed_with_opts(suite, impls, geometries, LoweringOptions::default())
    }

    /// [`SuiteData::collect_timed`] with explicit lowering/simulator
    /// options (e.g. `predecode: false` for `tamsim perf --no-predecode`).
    pub fn collect_timed_with_opts(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
        opts: LoweringOptions,
    ) -> (SuiteData, SuitePerf) {
        let names: Vec<String> = suite.iter().map(|b| b.name.to_string()).collect();
        let tasks = task_list(&suite, impls);

        // Phase 1: machine simulations, one recorded run per task, fanned
        // out with `par_map` (at most one worker per core: each simulation
        // carries a multi-megabyte working set — machine memory plus the
        // growing trace log — and oversubscribing cores context-switches
        // those working sets through the host caches).
        let t0 = Instant::now();
        let recorded: Vec<(String, Implementation, RecordedRun)> =
            tamsim_trace::par_map(tasks, move |(name, program, impl_)| {
                let rec = Experiment::new(impl_)
                    .with_opts(opts)
                    .run_recorded(&program);
                (name, impl_, rec)
            });
        let machine_seconds = t0.elapsed().as_secs_f64();

        // Phase 2: replay every recording into the full sweep. Each call
        // already shards geometries across all cores, so runs go one at a
        // time; their logs are dropped as soon as they are scored.
        let t1 = Instant::now();
        let mut events = 0u64;
        let runs: Vec<ProgramRun> = recorded
            .into_iter()
            .map(|(name, impl_, rec)| {
                events += rec.log.len() as u64;
                let caches = CacheBank::replay_parallel(&geometries, &rec.log);
                ProgramRun {
                    name,
                    implementation: impl_,
                    run: rec.run,
                    caches,
                }
            })
            .collect();
        let replay_seconds = t1.elapsed().as_secs_f64();

        let data = SuiteData::from_runs(runs, names, geometries);
        (
            data,
            SuitePerf {
                machine_seconds,
                replay_seconds,
                events,
            },
        )
    }

    /// Legacy streaming collection: each machine run is probed untraced
    /// first, then re-run with a live [`CacheBank`] fanning every access
    /// to every geometry. Kept as the baseline the `tamsim perf` command
    /// measures the record/replay engine against, and for ablations that
    /// need a live sink.
    pub fn collect_inline(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
    ) -> SuiteData {
        Self::collect_inline_with_opts(suite, impls, geometries, LoweringOptions::default())
    }

    /// [`SuiteData::collect_inline`] with explicit lowering/simulator
    /// options.
    pub fn collect_inline_with_opts(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
        opts: LoweringOptions,
    ) -> SuiteData {
        let names: Vec<String> = suite.iter().map(|b| b.name.to_string()).collect();
        let tasks = task_list(&suite, impls);
        // Same one-worker-per-core `par_map` fan-out as `collect_timed`,
        // for the same working-set reason (and a fair perf comparison).
        let geoms = &geometries;
        let runs: Vec<ProgramRun> = tamsim_trace::par_map(tasks, move |(name, program, impl_)| {
            let mut bank = CacheBank::symmetric(geoms.iter().copied());
            let run = Experiment::new(impl_)
                .with_opts(opts)
                .run_with_sink(&program, &mut bank);
            ProgramRun {
                name,
                implementation: impl_,
                run,
                caches: bank.summaries(),
            }
        });
        SuiteData::from_runs(runs, names, geometries)
    }

    /// Build the dataset and its lookup index from collected runs.
    fn from_runs(
        runs: Vec<ProgramRun>,
        names: Vec<String>,
        geometries: Vec<CacheGeometry>,
    ) -> SuiteData {
        let mut index: HashMap<String, [Option<usize>; N_IMPLS]> = HashMap::new();
        for (i, r) in runs.iter().enumerate() {
            index.entry(r.name.clone()).or_default()[impl_slot(r.implementation)] = Some(i);
        }
        SuiteData {
            runs,
            index,
            names,
            geometries,
        }
    }

    /// The run for `(name, impl_)`. Allocation-free: the lookup goes
    /// through a `&str`-keyed index into the run table.
    ///
    /// # Panics
    /// Panics when the pair was not collected.
    pub fn get(&self, name: &str, impl_: Implementation) -> &ProgramRun {
        self.index
            .get(name)
            .and_then(|slots| slots[impl_slot(impl_)])
            .map(|i| &self.runs[i])
            .unwrap_or_else(|| panic!("no run for {name} under {impl_:?}"))
    }

    /// MD/AM total-cycle ratio for one program.
    pub fn ratio(&self, name: &str, geometry: CacheGeometry, model: CycleModel) -> f64 {
        let md = self.get(name, Implementation::Md).cycles(geometry, model);
        let am = self.get(name, Implementation::Am).cycles(geometry, model);
        md as f64 / am as f64
    }

    /// Geometric mean of the MD/AM ratio over `names`.
    pub fn geomean_ratio(&self, names: &[&str], geometry: CacheGeometry, model: CycleModel) -> f64 {
        geomean(names.iter().map(|n| self.ratio(n, geometry, model)))
    }

    /// All program names as `&str`s.
    pub fn name_refs(&self) -> Vec<&str> {
        self.names.iter().map(|s| s.as_str()).collect()
    }
}

/// The (name, program, implementation) work list for a collection pass.
fn task_list(
    suite: &[PaperBenchmark],
    impls: &[Implementation],
) -> Vec<(String, tamsim_tam::Program, Implementation)> {
    let mut tasks = Vec::new();
    for bench in suite {
        for &impl_ in impls {
            tasks.push((bench.name.to_string(), bench.program.clone(), impl_));
        }
    }
    tasks
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean of non-positive value {v}");
        log_sum += v.ln();
        n += 1;
    }
    assert!(n > 0, "geomean of empty set");
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_cache::table2_geometry;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geomean_rejects_nonpositive() {
        geomean([1.0, 0.0]);
    }

    #[test]
    fn record_replay_collection_matches_inline_collection() {
        let suite = || {
            vec![
                PaperBenchmark {
                    name: "FIB",
                    program: tamsim_programs::fib(8),
                },
                PaperBenchmark {
                    name: "SS",
                    program: tamsim_programs::ss(12),
                },
            ]
        };
        let impls = [Implementation::Md, Implementation::Am];
        let geoms = vec![
            table2_geometry(),
            tamsim_cache::CacheGeometry::new(1024, 1, 64),
        ];
        let (new, perf) = SuiteData::collect_timed(suite(), &impls, geoms.clone());
        let old = SuiteData::collect_inline(suite(), &impls, geoms.clone());
        assert!(perf.events > 0);
        for name in ["FIB", "SS"] {
            for impl_ in impls {
                let a = new.get(name, impl_);
                let b = old.get(name, impl_);
                assert_eq!(a.run.instructions, b.run.instructions, "{name} {impl_:?}");
                assert_eq!(a.caches, b.caches, "{name} {impl_:?}");
            }
        }
    }

    #[test]
    fn collect_small_suite_and_derive_ratios() {
        let suite = vec![
            PaperBenchmark {
                name: "FIB",
                program: tamsim_programs::fib(8),
            },
            PaperBenchmark {
                name: "SS",
                program: tamsim_programs::ss(12),
            },
        ];
        let geom = table2_geometry();
        let data = SuiteData::collect(suite, &[Implementation::Md, Implementation::Am], vec![geom]);
        let model = CycleModel::paper(12);
        for name in ["FIB", "SS"] {
            let r = data.ratio(name, geom, model);
            assert!(r > 0.1 && r < 10.0, "{name}: implausible ratio {r}");
        }
        let gm = data.geomean_ratio(&["FIB", "SS"], geom, model);
        assert!(gm > 0.0);
        // Cycles grow with the miss penalty.
        let md = data.get("SS", Implementation::Md);
        assert!(md.cycles(geom, CycleModel::paper(48)) > md.cycles(geom, CycleModel::paper(12)));
    }
}
