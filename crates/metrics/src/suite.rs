//! Collecting the measurement dataset: one traced machine run per
//! (program, implementation), fanned into every cache configuration.

use std::collections::HashMap;

use tamsim_cache::{CacheBank, CacheGeometry, CacheSummary, CycleModel};
use tamsim_core::{Experiment, Implementation, RunResult};
use tamsim_programs::PaperBenchmark;

/// One traced run of one program under one implementation.
#[derive(Debug, Clone)]
pub struct ProgramRun {
    /// Benchmark name ("MMT", …).
    pub name: String,
    /// Which back-end ran.
    pub implementation: Implementation,
    /// Instruction counts, granularity, and Section 3.1 access counts.
    pub run: RunResult,
    /// Cache outcome for every geometry in the sweep.
    pub caches: Vec<(CacheGeometry, CacheSummary)>,
}

impl ProgramRun {
    /// Total cycles at `geometry` under `model`.
    pub fn cycles(&self, geometry: CacheGeometry, model: CycleModel) -> u64 {
        let (_, summary) = self
            .caches
            .iter()
            .find(|(g, _)| *g == geometry)
            .unwrap_or_else(|| panic!("geometry {geometry:?} not in sweep"));
        model.total_cycles(self.run.instructions, summary)
    }
}

/// The full dataset for a suite of programs.
#[derive(Debug, Clone, Default)]
pub struct SuiteData {
    /// All runs, keyed by `(name, implementation)`.
    runs: HashMap<(String, Implementation), ProgramRun>,
    /// Program names in suite order.
    pub names: Vec<String>,
    /// The geometry sweep used.
    pub geometries: Vec<CacheGeometry>,
}

impl SuiteData {
    /// Run every program of `suite` under each of `impls`, tracing into a
    /// cache bank over `geometries`. Runs execute in parallel (they are
    /// independent single-threaded simulations).
    pub fn collect(
        suite: Vec<PaperBenchmark>,
        impls: &[Implementation],
        geometries: Vec<CacheGeometry>,
    ) -> SuiteData {
        let names: Vec<String> = suite.iter().map(|b| b.name.to_string()).collect();
        let mut tasks = Vec::new();
        for bench in &suite {
            for &impl_ in impls {
                tasks.push((bench.name.to_string(), bench.program.clone(), impl_));
            }
        }
        let geoms = &geometries;
        let runs: Vec<ProgramRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .into_iter()
                .map(|(name, program, impl_)| {
                    scope.spawn(move || {
                        let mut bank = CacheBank::symmetric(geoms.iter().copied());
                        let run = Experiment::new(impl_).run_with_sink(&program, &mut bank);
                        ProgramRun {
                            name,
                            implementation: impl_,
                            run,
                            caches: bank.summaries(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("run panicked")).collect()
        });
        let mut map = HashMap::new();
        for r in runs {
            map.insert((r.name.clone(), r.implementation), r);
        }
        SuiteData { runs: map, names, geometries }
    }

    /// The run for `(name, impl_)`.
    ///
    /// # Panics
    /// Panics when the pair was not collected.
    pub fn get(&self, name: &str, impl_: Implementation) -> &ProgramRun {
        self.runs
            .get(&(name.to_string(), impl_))
            .unwrap_or_else(|| panic!("no run for {name} under {impl_:?}"))
    }

    /// MD/AM total-cycle ratio for one program.
    pub fn ratio(&self, name: &str, geometry: CacheGeometry, model: CycleModel) -> f64 {
        let md = self.get(name, Implementation::Md).cycles(geometry, model);
        let am = self.get(name, Implementation::Am).cycles(geometry, model);
        md as f64 / am as f64
    }

    /// Geometric mean of the MD/AM ratio over `names`.
    pub fn geomean_ratio(
        &self,
        names: &[&str],
        geometry: CacheGeometry,
        model: CycleModel,
    ) -> f64 {
        geomean(names.iter().map(|n| self.ratio(n, geometry, model)))
    }

    /// All program names as `&str`s.
    pub fn name_refs(&self) -> Vec<&str> {
        self.names.iter().map(|s| s.as_str()).collect()
    }
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean of non-positive value {v}");
        log_sum += v.ln();
        n += 1;
    }
    assert!(n > 0, "geomean of empty set");
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamsim_cache::table2_geometry;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn geomean_rejects_nonpositive() {
        geomean([1.0, 0.0]);
    }

    #[test]
    fn collect_small_suite_and_derive_ratios() {
        let suite = vec![
            PaperBenchmark { name: "FIB", program: tamsim_programs::fib(8) },
            PaperBenchmark { name: "SS", program: tamsim_programs::ss(12) },
        ];
        let geom = table2_geometry();
        let data = SuiteData::collect(
            suite,
            &[Implementation::Md, Implementation::Am],
            vec![geom],
        );
        let model = CycleModel::paper(12);
        for name in ["FIB", "SS"] {
            let r = data.ratio(name, geom, model);
            assert!(r > 0.1 && r < 10.0, "{name}: implausible ratio {r}");
        }
        let gm = data.geomean_ratio(&["FIB", "SS"], geom, model);
        assert!(gm > 0.0);
        // Cycles grow with the miss penalty.
        let md = data.get("SS", Implementation::Md);
        assert!(
            md.cycles(geom, CycleModel::paper(48)) > md.cycles(geom, CycleModel::paper(12))
        );
    }
}
