//! Cross-crate integration tests through the `tamsim` facade: the full
//! pipeline (program → lowering → machine → trace → caches → statistics)
//! at reduced sizes.

use tamsim::cache::{paper_sweep, table2_geometry, CacheBank, CycleModel};
use tamsim::core::{Experiment, Implementation};
use tamsim::metrics::{accesses, figure3, table2, SuiteData};
use tamsim::programs;

const BOTH: [Implementation; 2] = [Implementation::Md, Implementation::Am];

#[test]
fn every_benchmark_is_correct_under_every_implementation() {
    for impl_ in [
        Implementation::Am,
        Implementation::AmEnabled,
        Implementation::Md,
    ] {
        let out = Experiment::new(impl_).run(&programs::mmt(10));
        assert_eq!(
            out.result[0].as_f64(),
            programs::mmt_expected(10),
            "{impl_:?} mmt"
        );
        let out = Experiment::new(impl_).run(&programs::quicksort(20, 3));
        assert_eq!(
            out.result[0].as_i64(),
            programs::quicksort_expected(20, 3),
            "{impl_:?} qs"
        );
        let out = Experiment::new(impl_).run(&programs::dtw(4, 4));
        assert_eq!(
            out.result[0].as_f64(),
            programs::dtw_expected(4, 4),
            "{impl_:?} dtw"
        );
        let out = Experiment::new(impl_).run(&programs::paraffins(7));
        assert_eq!(
            out.result[0].as_i64(),
            programs::paraffins_expected(7).0,
            "{impl_:?} par"
        );
        let out = Experiment::new(impl_).run(&programs::wavefront(6, 2));
        assert_eq!(
            out.result[0].as_f64(),
            programs::wavefront_expected(6, 2),
            "{impl_:?} wavefront"
        );
        let out = Experiment::new(impl_).run(&programs::ss(16));
        assert_eq!(
            out.result[0].as_i64(),
            programs::ss_expected(16),
            "{impl_:?} ss"
        );
    }
}

#[test]
fn suite_dataset_supports_every_figure() {
    let data = SuiteData::collect(programs::small_suite(), &BOTH, paper_sweep());
    // Table 2 renders one row per program.
    let t2 = table2(&data).to_csv();
    assert_eq!(t2.lines().count(), 1 + data.names.len());
    // Figure 3 produces three miss-cost tables over eight sizes.
    let f3 = figure3(&data);
    assert_eq!(f3.len(), 3);
    for (_, t) in &f3 {
        assert_eq!(t.to_csv().lines().count(), 9);
    }
    // Section 3.1: MD accesses strictly fewer than AM on average.
    let acc = accesses(&data).to_csv();
    let avg: Vec<f64> = acc
        .lines()
        .last()
        .unwrap()
        .split(',')
        .skip(1)
        .map(|c| c.parse().unwrap())
        .collect();
    for v in avg {
        assert!(v < 1.0, "average MD/AM access ratio {v} should be < 1");
    }
}

#[test]
fn md_wins_the_small_cache_low_penalty_regime() {
    // The paper: "for all caches, the MD implementation outperforms the
    // AM implementation when the miss cost is 12 … cycles".
    let data = SuiteData::collect(programs::small_suite(), &BOTH, paper_sweep());
    let names = data.name_refs();
    for geom in paper_sweep() {
        let r = data.geomean_ratio(&names, geom, CycleModel::paper(12));
        assert!(r < 1.0, "geomean MD/AM at {geom:?} miss 12 is {r}");
    }
}

#[test]
fn cycle_ratio_rises_with_miss_penalty_for_fine_grained_programs() {
    // Table 2's trend: the finest-grained programs favour AM more as the
    // miss penalty grows.
    let geom = table2_geometry();
    let mut bank_md = CacheBank::symmetric([geom]);
    let mut bank_am = CacheBank::symmetric([geom]);
    let p = programs::mmt(10);
    let md = Experiment::new(Implementation::Md).run_with_sink(&p, &mut bank_md);
    let am = Experiment::new(Implementation::Am).run_with_sink(&p, &mut bank_am);
    let ratio = |cost| {
        let m = CycleModel::paper(cost);
        m.total_cycles(md.instructions, &bank_md.summary_for(geom).unwrap()) as f64
            / m.total_cycles(am.instructions, &bank_am.summary_for(geom).unwrap()) as f64
    };
    assert!(
        ratio(48) > ratio(12),
        "48-cycle {:.3} !> 12-cycle {:.3}",
        ratio(48),
        ratio(12)
    );
}

#[test]
fn queue_sram_ablation_removes_queue_misses() {
    let geom = table2_geometry();
    let p = programs::quicksort(16, 5);
    let mut through = Experiment::new(Implementation::Md);
    through.queue_bypass = false;
    let mut sram = Experiment::new(Implementation::Md);
    sram.queue_bypass = true;

    let mut bank_t = CacheBank::symmetric([geom]);
    let out_t = through.run_with_sink(&p, &mut bank_t);
    let mut bank_s = CacheBank::symmetric([geom]);
    let out_s = sram.run_with_sink(&p, &mut bank_s);

    assert_eq!(out_t.queue_accesses, 0);
    assert!(out_s.queue_accesses > 0);
    // Same program behaviour, fewer data-cache accesses with the SRAM.
    assert_eq!(out_t.instructions, out_s.instructions);
    let (dt, ds) = (
        bank_t.summary_for(geom).unwrap().d,
        bank_s.summary_for(geom).unwrap().d,
    );
    assert_eq!(dt.accesses(), ds.accesses() + out_s.queue_accesses);
}

#[test]
fn enabled_am_variant_reduces_instructions_and_grows_quanta() {
    // §2.4: "performance of the enabled implementation is superior to
    // that of the AM implementation on a single processor".
    for bench in programs::small_suite() {
        let am = Experiment::new(Implementation::Am).run(&bench.program);
        let en = Experiment::new(Implementation::AmEnabled).run(&bench.program);
        assert!(
            en.instructions <= am.instructions,
            "{}: enabled {} > unenabled {}",
            bench.name,
            en.instructions,
            am.instructions
        );
        // Quanta grow (or stay put) for the split-phase programs; SS has
        // no remote fetches inside its giant quanta, so it only sees the
        // cheaper thread prologue.
        if bench.name != "SS" {
            assert!(
                en.granularity.ipq() >= am.granularity.ipq() * 0.9,
                "{}: enabled ipq {} vs {}",
                bench.name,
                en.granularity.ipq(),
                am.granularity.ipq()
            );
        }
    }
}

#[test]
fn md_optimizations_only_remove_instructions() {
    use tamsim::core::LoweringOptions;
    for bench in programs::small_suite() {
        let full = Experiment::new(Implementation::Md).run(&bench.program);
        let none = Experiment::new(Implementation::Md)
            .with_opts(LoweringOptions::none())
            .run(&bench.program);
        assert!(
            full.instructions <= none.instructions,
            "{}: optimized {} > unoptimized {}",
            bench.name,
            full.instructions,
            none.instructions
        );
        assert_eq!(full.result, none.result, "{}", bench.name);
    }
}

#[test]
fn ss_dwarfs_everything_in_threads_per_quantum() {
    // SS is the outlier the paper removes in Figure 6.
    let data = SuiteData::collect(programs::small_suite(), &BOTH, vec![table2_geometry()]);
    let ss = data.get("SS", Implementation::Md).run.granularity.tpq();
    for name in data.name_refs() {
        if name != "SS" {
            let other = data.get(name, Implementation::Md).run.granularity.tpq();
            assert!(ss > 5.0 * other, "SS tpq {ss} vs {name} {other}");
        }
    }
}

#[test]
fn shipped_tam_source_files_parse_and_run() {
    for (file, expected) in [
        ("examples/tam/double.tam", 42i64),
        ("examples/tam/sum_range.tam", (0..64).sum()),
    ] {
        let source = std::fs::read_to_string(file).unwrap();
        let program = tamsim::tam::parse_program(&source).unwrap();
        // Round-trip through the printer too.
        let reparsed = tamsim::tam::parse_program(&tamsim::tam::program_to_text(&program)).unwrap();
        assert_eq!(program.codeblocks, reparsed.codeblocks, "{file}");
        for impl_ in [Implementation::Am, Implementation::Md] {
            let out = Experiment::new(impl_).run(&program);
            assert_eq!(out.result[0].as_i64(), expected, "{file} under {impl_:?}");
        }
    }
}
