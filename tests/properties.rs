//! Property-based tests (proptest) on the core data structures and on
//! whole-simulation invariants.

use proptest::prelude::*;
use std::collections::VecDeque;

use tamsim::cache::{Cache, CacheGeometry};
use tamsim::core::{Experiment, Implementation};
use tamsim::mdp::MessageQueue;
use tamsim::metrics::geomean;
use tamsim::programs;
use tamsim::trace::{Access, AccessCounts, AccessKind, MemoryMap, Region};

// ---------------------------------------------------------------------
// Cache: the fast implementation must agree with an oracle that models a
// set-associative LRU write-back cache with explicit recency lists.
// ---------------------------------------------------------------------

struct OracleCache {
    sets: Vec<VecDeque<(u32, bool)>>, // (tag, dirty), front = MRU
    assoc: usize,
    block_shift: u32,
    n_sets: u32,
    misses: u64,
    writebacks: u64,
}

impl OracleCache {
    fn new(g: CacheGeometry) -> Self {
        OracleCache {
            sets: vec![VecDeque::new(); g.n_sets() as usize],
            assoc: g.assoc as usize,
            block_shift: g.block_bytes.trailing_zeros(),
            n_sets: g.n_sets(),
            misses: 0,
            writebacks: 0,
        }
    }

    fn access(&mut self, addr: u32, write: bool) -> bool {
        let block = addr >> self.block_shift;
        let set = (block % self.n_sets) as usize;
        let tag = block / self.n_sets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|(t, _)| *t == tag) {
            let (t, dirty) = s.remove(pos).unwrap();
            s.push_front((t, dirty || write));
            true
        } else {
            self.misses += 1;
            if s.len() == self.assoc {
                let (_, dirty) = s.pop_back().unwrap();
                if dirty {
                    self.writebacks += 1;
                }
            }
            s.push_front((tag, write));
            false
        }
    }
}

fn geometry_strategy() -> impl Strategy<Value = CacheGeometry> {
    (0u32..4, 0u32..3, 0u32..4).prop_map(|(s, a, b)| {
        let size = 256 << s; // 256B..2K
        let assoc = 1 << a; // 1, 2, 4
        let block = 8 << b; // 8..64
        CacheGeometry::new(size.max(assoc * block), assoc, block)
    })
}

proptest! {
    #[test]
    fn cache_matches_lru_oracle(
        geometry in geometry_strategy(),
        ops in prop::collection::vec((0u32..4096, any::<bool>()), 1..400),
    ) {
        let mut cache = Cache::new(geometry);
        let mut oracle = OracleCache::new(geometry);
        for (addr, write) in ops {
            let addr = addr & !3; // word aligned
            let hit = cache.access(addr, write);
            let oracle_hit = oracle.access(addr, write);
            prop_assert_eq!(hit, oracle_hit, "divergence at {:#x}", addr);
        }
        prop_assert_eq!(cache.stats.misses(), oracle.misses);
        prop_assert_eq!(cache.stats.writebacks, oracle.writebacks);
    }

    // -----------------------------------------------------------------
    // Message queue: FIFO order, ring addressing stays in range, and
    // used-word accounting balances.
    // -----------------------------------------------------------------
    #[test]
    fn queue_is_fifo_and_bounded(lens in prop::collection::vec(1u32..6, 1..200)) {
        let cap = 32u32;
        let base = 0x0020_0000u32;
        let mut q = MessageQueue::new(base, cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for (i, &len) in lens.iter().enumerate() {
            while q.used_words() + len > cap {
                // Drain messages, FIFO, until the new one fits.
                let front = q.front().unwrap();
                prop_assert_eq!(front.len, *model.front().unwrap());
                q.retire(front);
                model.pop_front();
            }
            let m = q.begin_enqueue(len).unwrap();
            model.push_back(len);
            // Every word address lies inside the ring.
            for w in 0..len {
                let a = q.addr_of(m.start, w);
                prop_assert!(a >= base && a < base + cap * 4);
                prop_assert_eq!(a % 4, 0);
            }
            prop_assert_eq!(q.len(), model.len(), "iteration {}", i);
        }
        while let Some(front) = q.front() {
            prop_assert_eq!(front.len, *model.front().unwrap());
            q.retire(front);
            model.pop_front();
        }
        prop_assert_eq!(q.used_words(), 0);
    }

    // -----------------------------------------------------------------
    // Geometric mean: bounded by min/max, scale-equivariant.
    // -----------------------------------------------------------------
    #[test]
    fn geomean_properties(values in prop::collection::vec(0.01f64..100.0, 1..20), k in 0.1f64..10.0) {
        let g = geomean(values.iter().copied());
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001, "{lo} <= {g} <= {hi}");
        let scaled = geomean(values.iter().map(|v| v * k));
        prop_assert!((scaled / g - k).abs() < 1e-9 * k);
    }

    // -----------------------------------------------------------------
    // Access counts: region classification is total and merge is a sum.
    // -----------------------------------------------------------------
    #[test]
    fn access_counts_merge_is_sum(
        addrs_a in prop::collection::vec(0u32..0x0200_0000, 0..100),
        addrs_b in prop::collection::vec(0u32..0x0200_0000, 0..100),
    ) {
        let map = MemoryMap::default();
        let mut a = AccessCounts::new();
        let mut b = AccessCounts::new();
        let mut joint = AccessCounts::new();
        for (i, addr) in addrs_a.iter().enumerate() {
            let kind = AccessKind::ALL[i % 3];
            let acc = Access { kind, addr: addr & !3 };
            a.record(acc, &map);
            joint.record(acc, &map);
        }
        for (i, addr) in addrs_b.iter().enumerate() {
            let kind = AccessKind::ALL[(i + 1) % 3];
            let acc = Access { kind, addr: addr & !3 };
            b.record(acc, &map);
            joint.record(acc, &map);
        }
        a.merge(&b);
        for r in Region::ALL {
            for k in AccessKind::ALL {
                prop_assert_eq!(a.get(r, k), joint.get(r, k));
            }
        }
        prop_assert_eq!(a.total(), (addrs_a.len() + addrs_b.len()) as u64);
    }
}

// ---------------------------------------------------------------------
// Whole-simulation properties (fewer cases: each runs a machine).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Selection sort computes the closed-form checksum for arbitrary n,
    // under both implementations, and the machine is deterministic.
    #[test]
    fn ss_is_correct_for_arbitrary_sizes(n in 1u32..24) {
        for impl_ in [Implementation::Md, Implementation::Am] {
            let p = programs::ss(n);
            let out1 = Experiment::new(impl_).run(&p);
            let out2 = Experiment::new(impl_).run(&p);
            prop_assert_eq!(out1.result[0].as_i64(), programs::ss_expected(n));
            prop_assert_eq!(out1.instructions, out2.instructions, "nondeterministic run");
            prop_assert_eq!(out1.counts, out2.counts);
        }
    }

    // Quicksort sorts arbitrary seeds/sizes identically under both
    // implementations.
    #[test]
    fn quicksort_sorts_arbitrary_inputs(n in 1usize..24, seed in any::<u64>()) {
        let p = programs::quicksort(n, seed);
        let want = programs::quicksort_expected(n, seed);
        for impl_ in [Implementation::Md, Implementation::Am] {
            let out = Experiment::new(impl_).run(&p);
            prop_assert_eq!(out.result[0].as_i64(), want);
        }
    }

    // Fibonacci: the MD implementation never executes more instructions
    // than the AM implementation on call-dominated workloads.
    #[test]
    fn md_beats_am_on_fib(n in 3u32..14) {
        let p = programs::fib(n);
        let md = Experiment::new(Implementation::Md).run(&p);
        let am = Experiment::new(Implementation::Am).run(&p);
        prop_assert_eq!(md.result[0].as_i64(), programs::fib_expected(n));
        prop_assert_eq!(am.result[0].as_i64(), programs::fib_expected(n));
        prop_assert!(md.instructions < am.instructions);
    }

    // Wavefront matches its reference for arbitrary shapes.
    #[test]
    fn wavefront_matches_reference(n in 2usize..10, gens in 1usize..4) {
        let p = programs::wavefront(n, gens);
        let want = programs::wavefront_expected(n, gens);
        for impl_ in [Implementation::Md, Implementation::Am] {
            let out = Experiment::new(impl_).run(&p);
            prop_assert_eq!(out.result[0].as_f64(), want);
        }
    }
}
