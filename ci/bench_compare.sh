#!/usr/bin/env bash
# Warn-only benchmark regression gate.
#
#   ci/bench_compare.sh SUMMARY_JSON [BASELINE_JSON]
#
# Compares a freshly produced perf summary (perf_summary.json or
# mesh_perf_summary.json — the script detects which) against the committed
# baseline in results/bench_baseline.json and prints a GitHub Actions
# `::warning::` annotation for every metric that regressed by more than
# 20%. Timings regress upward, speedups and MIPS regress downward.
#
# CI runners have noisy clocks, so this NEVER fails the build: it always
# exits 0. The annotations surface drift on the PR without blocking it;
# a real regression shows up consistently across runs.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 SUMMARY_JSON [BASELINE_JSON]" >&2
    exit 2
fi

summary="$1"
baseline="${2:-$(dirname "$0")/../results/bench_baseline.json}"

if [ ! -s "$summary" ]; then
    echo "::warning::bench_compare: summary '$summary' missing or empty; skipping"
    exit 0
fi
if [ ! -s "$baseline" ]; then
    echo "::warning::bench_compare: baseline '$baseline' missing or empty; skipping"
    exit 0
fi

python3 - "$summary" "$baseline" <<'EOF'
import json
import sys

THRESHOLD = 0.20  # warn past 20% drift in the bad direction

summary_path, baseline_path = sys.argv[1], sys.argv[2]
summary = json.load(open(summary_path))
baseline = json.load(open(baseline_path))

warnings = []


def check(name, base, now, lower_is_better):
    """Record a warning if `now` regressed past the threshold vs `base`."""
    if base is None or now is None or base <= 0:
        return
    delta = (now - base) / base
    regressed = delta > THRESHOLD if lower_is_better else delta < -THRESHOLD
    arrow = "slower" if lower_is_better else "lower"
    line = f"{name}: baseline {base:g}, now {now:g} ({delta:+.1%})"
    if regressed:
        warnings.append(f"{line} — more than {THRESHOLD:.0%} {arrow}")
    else:
        print(f"  ok  {line}")


if "lockstep_seconds" in summary:
    # mesh_perf_summary.json: the two driver timings and their ratio.
    base = baseline.get("mesh", {})
    check("mesh speedup", base.get("speedup"), summary.get("speedup"), False)
    check(
        "mesh lockstep_seconds",
        base.get("lockstep_seconds"),
        summary.get("lockstep_seconds"),
        True,
    )
    check(
        "mesh fastforward_seconds",
        base.get("fastforward_seconds"),
        summary.get("fastforward_seconds"),
        True,
    )
else:
    # perf_summary.json: record/replay engine and dispatch harness.
    base = baseline.get("machine", {})
    check(
        "machine_seconds",
        base.get("machine_seconds"),
        summary.get("machine_seconds"),
        True,
    )
    check("suite speedup", base.get("speedup"), summary.get("speedup"), False)
    dispatch = summary.get("dispatch", {})
    check(
        "dispatch_speedup",
        base.get("dispatch_speedup"),
        dispatch.get("dispatch_speedup"),
        False,
    )
    base_mips = base.get("decoded_mips", {})
    for prog in dispatch.get("programs", []):
        check(
            f"decoded MIPS ({prog['name']})",
            base_mips.get(prog["name"]),
            prog.get("decoded_mips"),
            False,
        )

if warnings:
    for w in warnings:
        print(f"::warning::bench regression vs {baseline_path}: {w}")
    print(f"{len(warnings)} metric(s) regressed past 20% (warn-only; not failing CI)")
else:
    print(f"bench_compare: all metrics within 20% of {baseline_path}")
EOF

exit 0
