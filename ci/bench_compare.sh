#!/usr/bin/env bash
# Two-tier benchmark regression gate.
#
#   ci/bench_compare.sh SUMMARY_JSON [BASELINE_JSON]
#
# Compares a freshly produced perf summary (perf_summary.json or
# mesh_perf_summary.json — the script detects which) against the committed
# baseline in results/bench_baseline.json. Timings regress upward,
# speedups and MIPS regress downward.
#
# Two thresholds:
#
#   * past 20% drift in the bad direction: a GitHub Actions `::warning::`
#     annotation. CI runners have noisy clocks; 20–30% surfaces drift on
#     the PR without blocking it.
#   * past 30%: a `::error::` annotation and a nonzero exit. A 30% swing
#     does not come from clock noise — it is a real regression (or a real
#     machine change, in which case re-bless results/bench_baseline.json
#     in the same PR).
#
# Parallel-driver metrics (parallel_speedup and friends) are always
# warn-only: the epoch-barrier driver's throughput depends on host core
# count far more than on the code (a 1-core container measures ~0.1x
# where a real multicore host measures >1x), so gating on them would just
# gate on the runner's shape.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 SUMMARY_JSON [BASELINE_JSON]" >&2
    exit 2
fi

summary="$1"
baseline="${2:-$(dirname "$0")/../results/bench_baseline.json}"

if [ ! -s "$summary" ]; then
    echo "::warning::bench_compare: summary '$summary' missing or empty; skipping"
    exit 0
fi
if [ ! -s "$baseline" ]; then
    echo "::warning::bench_compare: baseline '$baseline' missing or empty; skipping"
    exit 0
fi

python3 - "$summary" "$baseline" <<'EOF'
import json
import sys

WARN = 0.20  # annotate past 20% drift in the bad direction
FAIL = 0.30  # fail the build past 30%

summary_path, baseline_path = sys.argv[1], sys.argv[2]
summary = json.load(open(summary_path))
baseline = json.load(open(baseline_path))

warnings = []
failures = []


def check(name, base, now, lower_is_better, gate=True):
    """Classify `now` against `base`: ok, warn past 20%, fail past 30%.

    `gate=False` metrics (the host-shape-dependent parallel timings) can
    warn but never fail.
    """
    if base is None or now is None or base <= 0:
        return
    delta = (now - base) / base
    bad = delta if lower_is_better else -delta
    arrow = "slower" if lower_is_better else "lower"
    line = f"{name}: baseline {base:g}, now {now:g} ({delta:+.1%})"
    if bad > FAIL and gate:
        failures.append(f"{line} — more than {FAIL:.0%} {arrow}")
    elif bad > WARN:
        warnings.append(f"{line} — more than {WARN:.0%} {arrow}")
    else:
        print(f"  ok  {line}")


if "lockstep_seconds" in summary:
    # mesh_perf_summary.json: driver timings, their ratio, and the
    # parallel epoch-barrier driver's speedup (warn-only).
    base = baseline.get("mesh", {})
    check("mesh speedup", base.get("speedup"), summary.get("speedup"), False)
    check(
        "mesh lockstep_seconds",
        base.get("lockstep_seconds"),
        summary.get("lockstep_seconds"),
        True,
    )
    check(
        "mesh fastforward_seconds",
        base.get("fastforward_seconds"),
        summary.get("fastforward_seconds"),
        True,
    )
    if summary.get("parallel") == "skipped (1 core)":
        # One-core host: the CLI skips the parallel-driver benchmark
        # entirely (the measurement would be pure barrier overhead).
        print("  ok  mesh parallel driver: skipped (1 core); nothing to compare")
    else:
        check(
            "mesh parallel_speedup",
            base.get("parallel_speedup"),
            summary.get("parallel_speedup"),
            False,
            gate=False,
        )
else:
    # perf_summary.json: record/replay engine and dispatch harness.
    base = baseline.get("machine", {})
    check(
        "machine_seconds",
        base.get("machine_seconds"),
        summary.get("machine_seconds"),
        True,
    )
    check("suite speedup", base.get("speedup"), summary.get("speedup"), False)
    dispatch = summary.get("dispatch", {})
    check(
        "dispatch_speedup",
        base.get("dispatch_speedup"),
        dispatch.get("dispatch_speedup"),
        False,
    )
    base_mips = base.get("decoded_mips", {})
    for prog in dispatch.get("programs", []):
        check(
            f"decoded MIPS ({prog['name']})",
            base_mips.get(prog["name"]),
            prog.get("decoded_mips"),
            False,
        )

for w in warnings:
    print(f"::warning::bench regression vs {baseline_path}: {w}")
for f in failures:
    print(f"::error::bench regression vs {baseline_path}: {f}")
if failures:
    print(f"{len(failures)} metric(s) regressed past {FAIL:.0%}: failing")
    sys.exit(1)
if warnings:
    print(f"{len(warnings)} metric(s) regressed past {WARN:.0%} (warn-only)")
else:
    print(f"bench_compare: all metrics within {WARN:.0%} of {baseline_path}")
EOF
