#!/usr/bin/env bash
# Golden-figure regression gate.
#
# Runs the full small-suite pipeline (`tamsim all --small`) and compares
# every produced CSV against the committed goldens in tests/golden/.
# Any drift — a changed number, a missing figure, a new figure without a
# committed golden — fails the gate with a readable diff.
#
# The small suite is deterministic (fixed benchmark seeds, no wall-clock
# in the CSVs), so an exact byte comparison is the right bar: if a change
# moves a figure on purpose, regenerate the goldens with
#
#   cargo run --release -p tamsim-cli -- all --small --out /tmp/golden
#   cp /tmp/golden/*.csv tests/golden/
#
# and commit the new CSVs alongside the change that moved them.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN_DIR="$REPO_ROOT/tests/golden"
OUT_DIR="${1:-$(mktemp -d)}"
TAMSIM="${TAMSIM:-$REPO_ROOT/target/release/tamsim}"

if [ ! -x "$TAMSIM" ]; then
    echo "error: $TAMSIM not found or not executable (build with: cargo build --release)" >&2
    exit 2
fi

echo "golden gate: running '$TAMSIM all --small --out $OUT_DIR'"
if ! "$TAMSIM" all --small --out "$OUT_DIR" > /dev/null; then
    echo "error: tamsim all --small failed" >&2
    exit 1
fi

fail=0

# Every committed golden must be reproduced exactly.
for golden in "$GOLDEN_DIR"/*.csv; do
    name="$(basename "$golden")"
    fresh="$OUT_DIR/$name"
    if [ ! -f "$fresh" ]; then
        echo "FAIL: $name was not produced by the run" >&2
        fail=1
        continue
    fi
    if ! diff -u --label "golden/$name" --label "fresh/$name" "$golden" "$fresh"; then
        echo "FAIL: $name drifted from the committed golden" >&2
        fail=1
    fi
done

# Every produced CSV must have a committed golden (no silent new figures).
for fresh in "$OUT_DIR"/*.csv; do
    name="$(basename "$fresh")"
    if [ ! -f "$GOLDEN_DIR/$name" ]; then
        echo "FAIL: run produced $name but tests/golden/ has no such golden" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "" >&2
    echo "golden gate FAILED: see diffs above; regenerate goldens only for" >&2
    echo "intentional figure changes (instructions at the top of this script)." >&2
    exit 1
fi

count=$(ls "$GOLDEN_DIR"/*.csv | wc -l)
echo "golden gate OK: $count CSV(s) match tests/golden/ exactly"
