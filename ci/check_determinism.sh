#!/usr/bin/env bash
# Parallel-driver determinism wall.
#
#   ci/check_determinism.sh [OUT_DIR] [NODES]
#
# Runs every suite program on a NODES-node mesh (default 8) under all
# three back-ends with --threads 1, --threads 2, --threads 4, and a
# TAMSIM_JOBS=4 override, then byte-compares everything the runs
# produce:
#
#   * stdout (run summary, per-node cycle accounting) — after dropping
#     the one header line that names the worker-thread count;
#   * mesh_links.csv and mesh_trace.json — byte-for-byte;
#   * profile.json — identical after removing the "parallel" object,
#     which records the per-worker step split and so legitimately
#     depends on the thread count.
#
# Any other byte of difference means the epoch-barrier driver diverged
# from the serial loop: fail. All runs request threads explicitly, which
# forces the untraced mode, so serial and parallel runs emit the same
# artifact set. The open-loop serve driver gets the same treatment
# (serve_latency/requests/depth CSVs and profile.json across
# --threads 1/2/4). Finally the golden-figure gate re-runs under a
# TAMSIM_JOBS override to pin the CSV pipeline itself.
set -euo pipefail

out="${1:-det-out}"
nodes="${2:-8}"
bin="${TAMSIM:-./target/release/tamsim}"
progs=(fib MMT QS DTW Paraffins Wavefront SS)
impls=(am am-en md)

if [ ! -x "$bin" ]; then
    echo "error: tamsim binary '$bin' not built (cargo build --release -p tamsim-cli)" >&2
    exit 2
fi

rm -rf "$out"
mkdir -p "$out"

profiles_equal() {
    python3 - "$1" "$2" <<'EOF'
import json
import sys

a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
a.pop("parallel", None)
b.pop("parallel", None)
if a != b:
    sys.exit(1)
EOF
}

fail=0
for prog in "${progs[@]}"; do
    mkdir -p "$out/$prog"
    for run in t1 t2 t4 jobs4; do
        dir="$out/$prog/$run"
        case "$run" in
        jobs4)
            TAMSIM_JOBS=4 "$bin" mesh "$prog" --small --nodes "$nodes" \
                --impl all --out "$dir" >"$dir.stdout"
            ;;
        *)
            "$bin" mesh "$prog" --small --nodes "$nodes" --impl all \
                --threads "${run#t}" --out "$dir" >"$dir.stdout"
            ;;
        esac
        # The header line names the worker-thread count; every other
        # line of stdout (cycle counts, per-node tables) must match.
        sed '/^## mesh:/d' "$dir.stdout" >"$dir.stats"
    done
    for run in t2 t4 jobs4; do
        if ! cmp -s "$out/$prog/t1.stats" "$out/$prog/$run.stats"; then
            echo "FAIL: $prog stdout stats differ between --threads 1 and $run" >&2
            diff "$out/$prog/t1.stats" "$out/$prog/$run.stats" >&2 || true
            fail=1
        fi
        for imp in "${impls[@]}"; do
            for f in mesh_links.csv mesh_trace.json; do
                if ! cmp -s "$out/$prog/t1/$imp/$f" "$out/$prog/$run/$imp/$f"; then
                    echo "FAIL: $prog/$imp/$f differs between --threads 1 and $run" >&2
                    fail=1
                fi
            done
            if ! profiles_equal "$out/$prog/t1/$imp/profile.json" \
                "$out/$prog/$run/$imp/profile.json"; then
                echo "FAIL: $prog/$imp/profile.json differs between --threads 1 and $run (beyond the \"parallel\" object)" >&2
                fail=1
            fi
        done
    done
    echo "ok: $prog byte-identical across --threads 1/2/4 and TAMSIM_JOBS=4 (${#impls[@]} back-ends, $nodes nodes)"
done

# Serve mode: the open-loop request-serving driver must produce
# byte-identical artifacts across thread counts too. Serve profiles omit
# the "parallel" object by design, so every file byte-compares directly
# (stdout included — the serve header does not name a thread count).
mkdir -p "$out/serve"
for run in t1 t2 t4; do
    dir="$out/serve/$run"
    "$bin" serve --rate 20 --requests 24 --seed 3 --nodes "$nodes" \
        --impl all --threads "${run#t}" --out "$dir" >"$dir.stdout"
done
for run in t2 t4; do
    if ! cmp -s "$out/serve/t1.stdout" "$out/serve/$run.stdout"; then
        echo "FAIL: serve stdout differs between --threads 1 and $run" >&2
        diff "$out/serve/t1.stdout" "$out/serve/$run.stdout" >&2 || true
        fail=1
    fi
    for imp in "${impls[@]}"; do
        for f in serve_latency.csv serve_requests.csv serve_depth.csv profile.json; do
            if ! cmp -s "$out/serve/t1/$imp/$f" "$out/serve/$run/$imp/$f"; then
                echo "FAIL: serve/$imp/$f differs between --threads 1 and $run" >&2
                fail=1
            fi
        done
    done
done
echo "ok: serve byte-identical across --threads 1/2/4 (${#impls[@]} back-ends, $nodes nodes)"

# Work-stealing placement: --policy steal migrates frames between nodes
# at run time, with every steal decision made in the per-cycle serial
# phase — so its artifacts must byte-compare across thread counts just
# like the static policies'. One batch leg (MMT, the suite's heaviest
# communicator) and one corner-skewed serve leg (every request lands on
# node 0 — the workload that actually triggers migrations).
mkdir -p "$out/steal"
for run in t1 t2 t4; do
    dir="$out/steal/$run"
    "$bin" mesh MMT --small --nodes "$nodes" --impl all --policy steal \
        --threads "${run#t}" --out "$dir" >"$dir.stdout"
    sed '/^## mesh:/d' "$dir.stdout" >"$dir.stats"
done
for run in t2 t4; do
    if ! cmp -s "$out/steal/t1.stats" "$out/steal/$run.stats"; then
        echo "FAIL: steal-policy stdout stats differ between --threads 1 and $run" >&2
        diff "$out/steal/t1.stats" "$out/steal/$run.stats" >&2 || true
        fail=1
    fi
    for imp in "${impls[@]}"; do
        for f in mesh_links.csv mesh_trace.json; do
            if ! cmp -s "$out/steal/t1/$imp/$f" "$out/steal/$run/$imp/$f"; then
                echo "FAIL: steal/$imp/$f differs between --threads 1 and $run" >&2
                fail=1
            fi
        done
        if ! profiles_equal "$out/steal/t1/$imp/profile.json" \
            "$out/steal/$run/$imp/profile.json"; then
            echo "FAIL: steal/$imp/profile.json differs between --threads 1 and $run (beyond the \"parallel\" object)" >&2
            fail=1
        fi
    done
done
echo "ok: mesh --policy steal byte-identical across --threads 1/2/4 (${#impls[@]} back-ends, $nodes nodes)"

mkdir -p "$out/steal-serve"
for run in t1 t2 t4; do
    dir="$out/steal-serve/$run"
    "$bin" serve --rate 20 --requests 24 --seed 3 --nodes "$nodes" \
        --impl all --policy steal --origins corner \
        --threads "${run#t}" --out "$dir" >"$dir.stdout"
done
for run in t2 t4; do
    if ! cmp -s "$out/steal-serve/t1.stdout" "$out/steal-serve/$run.stdout"; then
        echo "FAIL: steal-serve stdout differs between --threads 1 and $run" >&2
        diff "$out/steal-serve/t1.stdout" "$out/steal-serve/$run.stdout" >&2 || true
        fail=1
    fi
    for imp in "${impls[@]}"; do
        for f in serve_latency.csv serve_requests.csv serve_depth.csv profile.json; do
            if ! cmp -s "$out/steal-serve/t1/$imp/$f" "$out/steal-serve/$run/$imp/$f"; then
                echo "FAIL: steal-serve/$imp/$f differs between --threads 1 and $run" >&2
                fail=1
            fi
        done
    done
done
echo "ok: serve --policy steal --origins corner byte-identical across --threads 1/2/4 (${#impls[@]} back-ends, $nodes nodes)"

if [ "$fail" -ne 0 ]; then
    echo "determinism wall: FAILED" >&2
    exit 1
fi

# The figure pipeline under a thread override: every golden CSV must
# still match tests/golden/ byte-for-byte.
TAMSIM_JOBS=2 "$(dirname "$0")/check_goldens.sh" "$out/golden-jobs2"
echo "determinism wall: all artifacts byte-identical across thread counts"
