//! Quickstart: build a TAM program, run it under both runtime
//! implementations, and compare their dynamic behaviour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tamsim::core::{Experiment, Implementation};
use tamsim::programs;

fn main() {
    // A classic fine-grained workload: recursive fib(18) — every call is
    // a codeblock activation with its own frame, argument messages, and
    // split-phase returns.
    let program = programs::fib(18);

    for impl_ in [Implementation::Am, Implementation::Md] {
        let out = Experiment::new(impl_).run(&program);
        println!("== {} implementation", impl_.label());
        println!("   result        : {}", out.result[0].as_i64());
        println!("   instructions  : {}", out.instructions);
        println!(
            "   accesses      : {} reads, {} writes, {} fetches",
            out.counts.reads(),
            out.counts.writes(),
            out.counts.fetches()
        );
        println!(
            "   granularity   : {:.1} threads/quantum, {:.1} instr/thread",
            out.granularity.tpq(),
            out.granularity.ipt()
        );
        println!(
            "   scheduling    : {} high-priority dispatches, {} low, {} preemptions",
            out.stats.dispatches[1], out.stats.dispatches[0], out.stats.preemptions
        );
    }

    let md = Experiment::new(Implementation::Md).run(&program);
    let am = Experiment::new(Implementation::Am).run(&program);
    assert_eq!(md.result[0].as_i64(), programs::fib_expected(18));
    assert_eq!(md.result[0].as_i64(), am.result[0].as_i64());
    println!(
        "\nMD executes {:.1}% of AM's instructions on this workload.",
        100.0 * md.instructions as f64 / am.instructions as f64
    );
}
