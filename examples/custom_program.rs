//! Author a TAM program from scratch with the builder API and watch it
//! run: a parallel tree-sum where every node of a binary tree is its own
//! codeblock activation.
//!
//! ```sh
//! cargo run --release --example custom_program
//! ```

use tamsim::core::{Experiment, Implementation};
use tamsim::tam::ids::regs::*;
use tamsim::tam::ops::*;
use tamsim::tam::{AluOp, CodeblockBuilder, ProgramBuilder, Value};

/// sum(lo, hi) = lo + (lo+1) + … + (hi-1), computed by recursive halving:
/// ranges of width one return their value; wider ranges call themselves
/// twice and add the replies.
fn tree_sum(lo: i64, hi: i64) -> tamsim::tam::Program {
    let mut pb = ProgramBuilder::new("tree-sum");
    let main = pb.declare("main");
    let node = pb.declare("node");

    let mut cb = CodeblockBuilder::new("node");
    let s_lo = cb.slot();
    let s_hi = cb.slot();
    let s_acc = cb.slot();
    let i_lo = cb.inlet(); // argument 0
    let i_hi = cb.inlet(); // argument 1
    let i_reply = cb.inlet();
    let t_start = cb.thread();
    let t_leaf = cb.thread();
    let t_split = cb.thread();
    let t_join = cb.thread();
    cb.def_inlet(i_lo, vec![ldmsg(R0, 0), st(s_lo, R0), post(t_start)]);
    cb.def_inlet(i_hi, vec![ldmsg(R0, 0), st(s_hi, R0), post(t_start)]);
    // Accumulate both children's replies, then join.
    cb.def_inlet(
        i_reply,
        vec![
            ldmsg(R0, 0),
            ld(R1, s_acc),
            alu(AluOp::Add, R1, R1, reg(R0)),
            st(s_acc, R1),
            post(t_join),
        ],
    );
    // Both arguments in: leaf or split?
    cb.def_thread(
        t_start,
        2,
        vec![
            ld(R0, s_lo),
            ld(R1, s_hi),
            alu(AluOp::Sub, R2, R1, reg(R0)),
            alu(AluOp::Eq, R3, R2, imm(1)),
            fork_if_else(R3, t_leaf, t_split),
        ],
    );
    cb.def_thread(t_leaf, 1, vec![ld(R0, s_lo), ret(vec![R0])]);
    cb.def_thread(
        t_split,
        1,
        vec![
            movi(R0, 0),
            st(s_acc, R0),
            ld(R1, s_lo),
            ld(R2, s_hi),
            // mid = (lo + hi) / 2.
            alu(AluOp::Add, R3, R1, reg(R2)),
            alu(AluOp::Div, R3, R3, imm(2)),
            call(node, vec![R1, R3], i_reply),
            call(node, vec![R3, R2], i_reply),
        ],
    );
    cb.def_thread(t_join, 2, vec![ld(R0, s_acc), ret(vec![R0])]);
    pb.define(node, cb.finish());

    let mut cb = CodeblockBuilder::new("main");
    let s_r = cb.slot();
    let i_arg = cb.inlet();
    let i_rep = cb.inlet();
    let t_go = cb.thread();
    let t_done = cb.thread();
    cb.def_inlet(i_arg, vec![post(t_go)]);
    cb.def_inlet(i_rep, vec![ldmsg(R0, 0), st(s_r, R0), post(t_done)]);
    cb.def_thread(
        t_go,
        1,
        vec![movi(R0, lo), movi(R1, hi), call(node, vec![R0, R1], i_rep)],
    );
    cb.def_thread(t_done, 1, vec![ld(R0, s_r), ret(vec![R0])]);
    pb.define(main, cb.finish());

    pb.main(main, vec![Value::Int(0)]);
    pb.build()
}

fn main() {
    let (lo, hi) = (0, 256);
    let program = tree_sum(lo, hi);
    let expected: i64 = (lo..hi).sum();

    for impl_ in [
        Implementation::Am,
        Implementation::AmEnabled,
        Implementation::Md,
    ] {
        let out = Experiment::new(impl_).run(&program);
        assert_eq!(out.result[0].as_i64(), expected);
        println!(
            "{:5}: sum(0..{hi}) = {:6}  instructions = {:8}  frames allocated per call, \
             {} threads over {} quanta",
            impl_.label(),
            out.result[0].as_i64(),
            out.instructions,
            out.granularity.threads,
            out.granularity.quanta,
        );
    }
}
