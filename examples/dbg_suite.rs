use tamsim_core::{Experiment, Implementation};
fn main() {
    let t0 = std::time::Instant::now();
    for bench in tamsim_programs::paper_suite() {
        let md = Experiment::new(Implementation::Md).run(&bench.program);
        let am = Experiment::new(Implementation::Am).run(&bench.program);
        println!(
            "{:10} MD: tpq={:7.1} ipt={:6.1} ipq={:8.0} instr={:>10}  AM: tpq={:7.1} ipt={:6.1} ipq={:8.0} instr={:>10}  MD/AM instr={:.3} q={:?}",
            bench.name,
            md.granularity.tpq(), md.granularity.ipt(), md.granularity.ipq(), md.instructions,
            am.granularity.tpq(), am.granularity.ipt(), am.granularity.ipq(), am.instructions,
            md.instructions as f64 / am.instructions as f64, md.queue_words,
        );
    }
    eprintln!("elapsed {:?}", t0.elapsed());
}
