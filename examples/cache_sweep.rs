//! Sweep one benchmark across the paper's cache configurations and print
//! the MD/AM total-cycle ratio curve — a single-program slice of
//! Figures 4 and 5.
//!
//! ```sh
//! cargo run --release --example cache_sweep
//! ```

use tamsim::cache::{paper_sweep, CacheBank, CacheGeometry, CycleModel, PAPER_CACHE_SIZES};
use tamsim::core::{Experiment, Implementation};
use tamsim::programs;

fn main() {
    // Quicksort at a moderate size: call-heavy and fine-grained, so the
    // scheduling overhead difference between the implementations is big.
    let program = programs::quicksort(64, 0xC0FFEE);

    // One traced run per implementation feeds all 24 cache configurations.
    let mut runs = Vec::new();
    for impl_ in [Implementation::Md, Implementation::Am] {
        let mut bank = CacheBank::symmetric(paper_sweep());
        let out = Experiment::new(impl_).run_with_sink(&program, &mut bank);
        println!(
            "{}: {} instructions, {} reads, {} writes",
            impl_.label(),
            out.instructions,
            out.counts.reads(),
            out.counts.writes()
        );
        runs.push((out.instructions, bank));
    }

    for assoc in [1u32, 2, 4] {
        println!("\nMD/AM total-cycle ratio, {assoc}-way, 64B blocks:");
        println!(
            "{:>6}  {:>8}  {:>8}  {:>8}",
            "size", "miss=12", "miss=24", "miss=48"
        );
        for size in PAPER_CACHE_SIZES {
            let geom = CacheGeometry::new(size, assoc, 64);
            print!("{:>5}K", size / 1024);
            for cost in [12, 24, 48] {
                let model = CycleModel::paper(cost);
                let md = model.total_cycles(runs[0].0, &runs[0].1.summary_for(geom).unwrap());
                let am = model.total_cycles(runs[1].0, &runs[1].1.summary_for(geom).unwrap());
                print!("  {:>8.3}", md as f64 / am as f64);
            }
            println!();
        }
    }
}
