//! Quick A/B timing of the two dispatch paths under different hook
//! configurations. `cargo run --release --example dispatch_ab`

use std::time::Instant;
use tamsim_core::{Experiment, Implementation, LoweringOptions};
use tamsim_trace::TraceLog;

fn main() {
    let suite = tamsim_programs::paper_suite();
    let impls = [Implementation::Md, Implementation::Am];
    for &predecode in &[false, true] {
        let opts = LoweringOptions {
            predecode,
            ..LoweringOptions::default()
        };

        // Pure interpreter: NoHooks, no probing (link once, run once).
        let t = Instant::now();
        for b in &suite {
            for impl_ in impls {
                let mut exp = Experiment::new(impl_).with_opts(opts);
                exp.queue_words = [1 << 15, 1 << 15];
                let linked = exp.link(&b.program);
                linked.run(&mut tamsim_mdp::NoHooks).unwrap();
            }
        }
        let nohooks = t.elapsed().as_secs_f64();

        // Log-only: a bare TraceLog as hooks via SinkHooks.
        let t = Instant::now();
        for b in &suite {
            for impl_ in impls {
                let mut exp = Experiment::new(impl_).with_opts(opts);
                exp.queue_words = [1 << 15, 1 << 15];
                let linked = exp.link(&b.program);
                let mut log = TraceLog::new();
                let mut hooks = tamsim_mdp::SinkHooks(&mut log);
                linked.run(&mut hooks).unwrap();
            }
        }
        let logonly = t.elapsed().as_secs_f64();

        // Full recorded path (counting + granularity + log).
        let t = Instant::now();
        for b in &suite {
            for impl_ in impls {
                Experiment::new(impl_)
                    .with_opts(opts)
                    .run_recorded(&b.program);
            }
        }
        let recorded = t.elapsed().as_secs_f64();

        // The production sweep path.
        let (_data, phases) = tamsim_metrics::SuiteData::collect_timed_with_opts(
            suite.clone(),
            &impls,
            tamsim_cache::paper_sweep(),
            opts,
        );
        println!(
            "predecode {predecode:5}: nohooks {nohooks:.3} s  log-only {logonly:.3} s  \
             recorded {recorded:.3} s  sweep-machine {:.3} s  sweep-replay {:.3} s",
            phases.machine_seconds, phases.replay_seconds
        );
    }
}
