//! Watch the two implementations schedule the same message sequence —
//! the Figure 1 contrast, live.
//!
//! ```sh
//! cargo run --release --example scheduling_order
//! ```

use tamsim::core::Implementation;
use tamsim::metrics::{capture_schedule, figure1_program, SchedEvent};

fn main() {
    let program = figure1_program();
    println!(
        "main invokes child(x, y): two argument messages for the same frame\n\
         arrive back-to-back. Inlet 0 posts thread 0; inlet 1 posts thread 1;\n\
         thread 2 joins.\n"
    );
    for impl_ in [Implementation::Am, Implementation::Md] {
        let events = capture_schedule(&program, impl_, 1);
        println!("{} implementation:", impl_.label());
        for (i, e) in events.iter().enumerate() {
            let what = match e {
                SchedEvent::Inlet { inlet, .. } => format!("inlet {inlet} (message handler)"),
                SchedEvent::Thread { thread, .. } => format!("thread {thread}"),
            };
            println!("  {}. {what}", i + 1);
        }
        println!();
    }
    println!(
        "AM: both inlets run at high priority before any thread (the frame's\n\
         enabled threads then run together as one quantum). MD: the first\n\
         inlet branches directly into its thread; the second message waits\n\
         until the LCV is empty — exactly the contrast of Figure 1."
    );
}
